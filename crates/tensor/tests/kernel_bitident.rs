//! Property-based bit-identity suite for the fast kernel paths.
//!
//! The blocked GEMM and the cached-lowering / arena-backed convolution
//! paths are pure reorderings of *independent* output elements: every
//! output element accumulates its `k` products in the same increasing-`ki`
//! order on every path, so results must be **bit-identical** to the naive
//! kernels — including NaN payloads and signed infinities, which the
//! fault-injection campaigns rely on for stable classifications.
//!
//! (`conv2d_direct` is deliberately absent here: it skips out-of-bounds
//! taps instead of multiplying explicit padding zeros, which is only
//! value-identical — not bit-identical — once NaN/Inf weights meet padded
//! borders. The im2col family is the campaign path and must agree with
//! itself exactly.)

#[path = "../../../tests/common/fixtures.rs"]
mod fixtures;

use fixtures::{assert_bits_equal, cycled, fault_like_f32};
use proptest::collection::vec;
use proptest::prelude::*;

use sfi_tensor::ops::{
    batch_norm, bn_channel_scale_shift, conv2d, conv2d_batched_from_lowered,
    conv2d_channel_batched, conv2d_channel_from_lowered, conv2d_from_lowered, conv2d_kernel,
    conv2d_with, gemm, gemm_blocked, gemm_micro, gemm_packed, gemm_packed_rows, gemm_row,
    gemm_row_lanes, im2col_lower, im2col_lower_batched, relu, relu6, BatchNormParams, Conv2dCfg,
    ConvEpilogue, FusedActivation, GemmKernel, Padding, MICRO_MR, MICRO_NR, MICRO_NR1,
};
use sfi_tensor::{ScratchArena, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked GEMM is bit-identical to the naive triple loop for shapes
    /// on either side of (and crossing) the BLOCK_N/BLOCK_K boundaries,
    /// accumulating on top of a nonzero C.
    #[test]
    fn blocked_gemm_is_bit_identical(
        m in 1usize..5,
        k in 1usize..160,
        n in 1usize..300,
        seed_a in vec(fault_like_f32(), 1..8),
        seed_c in -1.0f32..1.0f32,
        nan_mode in any::<bool>(),
    ) {
        // One NaN payload family per case (literal NaNs or infinities,
        // never both): tiling at `nw != n` widths shifts which columns sit
        // in the autovectorised loop's scalar tail, and a chain holding
        // two distinct payloads resolves the survivor by x86 operand
        // order there (see the bit-identity notes on `gemm`).
        let seed_a: Vec<f32> = seed_a
            .iter()
            .map(|&v| match (nan_mode, v.is_nan(), v.is_infinite()) {
                (true, _, true) => f32::NAN,
                (false, true, _) => f32::INFINITY,
                _ => v,
            })
            .collect();
        // Cycle the drawn values through the full operands; keeps the
        // strategy small while every position can host a special value.
        let a: Vec<f32> = cycled(&seed_a, m * k, 1, 0).iter().map(|v| v * 0.5).collect();
        let b: Vec<f32> =
            cycled(&seed_a, k * n, 7, 3).iter().map(|v| v * 0.25 + 0.01).collect();
        let mut c_naive = vec![seed_c; m * n];
        let mut c_blocked = c_naive.clone();
        let mut c_packed = c_naive.clone();
        gemm(m, k, n, &a, &b, &mut c_naive);
        gemm_blocked(m, k, n, &a, &b, &mut c_blocked);
        assert_bits_equal(&c_naive, &c_blocked);
        // Below the delegation threshold gemm_blocked routes to the naive
        // kernel, so the tile-and-pack path is exercised directly (with a
        // dirty reused panel buffer, as the arena-backed conv calls it).
        let mut panel = vec![f32::NAN; 7];
        gemm_packed(m, k, n, &a, &b, &mut c_packed, &mut panel);
        assert_bits_equal(&c_naive, &c_packed);
        // The row-tiled packing variant (the batched-forward workhorse)
        // must agree too, again through a dirty recycled panel.
        let mut c_packed_rows = vec![seed_c; m * n];
        let mut rows_panel = vec![f32::NAN; 13];
        gemm_packed_rows(m, k, n, &a, &b, &mut c_packed_rows, &mut rows_panel);
        assert_bits_equal(&c_naive, &c_packed_rows);
    }

    /// The register-tiled microkernels — the full `MR x NR` tile kernel
    /// behind the dispatched GEMM and the single-row lane kernel behind
    /// the early-exit probes — are bit-identical to the naive triple loop
    /// on shapes straddling every tile boundary (ragged `m % MR`,
    /// `n % NR`, `n % NR1` tails and the `KC`/`NC` block edges via the
    /// offset below), including empty/degenerate dims and fault-like
    /// NaN/±Inf payloads, accumulating on top of a nonzero C through a
    /// dirty reused scratch buffer.
    #[test]
    fn micro_kernels_are_bit_identical(
        m in 0usize..3 * MICRO_MR + 3,
        k_off in 0usize..40,
        n_off in 0usize..40,
        big_k in any::<bool>(),
        big_n in any::<bool>(),
        seed_a in vec(fault_like_f32(), 1..8),
        seed_c in -1.0f32..1.0f32,
        nan_mode in any::<bool>(),
    ) {
        // One NaN payload family per case, as in the blocked test above.
        let seed_a: Vec<f32> = seed_a
            .iter()
            .map(|&v| match (nan_mode, v.is_nan(), v.is_infinite()) {
                (true, _, true) => f32::NAN,
                (false, true, _) => f32::INFINITY,
                _ => v,
            })
            .collect();
        // `big_*` pushes k past the KC=256 block depth and n past the
        // NC=256 panel width so multi-block accumulation is exercised;
        // the offsets walk the ragged remainders.
        let k = if big_k { 240 + k_off } else { k_off };
        let n = if big_n { 240 + n_off } else { n_off };
        let a: Vec<f32> = cycled(&seed_a, m * k, 1, 0).iter().map(|v| v * 0.5).collect();
        let b: Vec<f32> =
            cycled(&seed_a, k * n, 7, 3).iter().map(|v| v * 0.25 + 0.01).collect();
        let mut c_naive = vec![seed_c; m * n];
        let mut c_micro = c_naive.clone();
        gemm(m, k, n, &a, &b, &mut c_naive);
        let mut scratch = vec![f32::NAN; 11]; // dirty, undersized scratch
        gemm_micro(m, k, n, &a, &b, &mut c_micro, &mut scratch);
        assert_bits_equal(&c_naive, &c_micro);
        // Single-row kernels against the same operands' first A row.
        if m >= 1 {
            let a_row = &a[..k];
            let mut r_naive = vec![seed_c; n];
            let mut r_lanes = r_naive.clone();
            let mut r_row = r_naive.clone();
            gemm(1, k, n, a_row, &b, &mut r_naive);
            gemm_row_lanes(k, n, a_row, &b, &mut r_lanes);
            assert_bits_equal(&r_naive, &r_lanes);
            gemm_row(k, n, a_row, &b, &mut r_row);
            assert_bits_equal(&r_naive, &r_row);
        }
        // Boundary sanity on the exported tile constants: the draws above
        // must actually straddle full tiles and ragged remainders.
        prop_assert!(3 * MICRO_MR + 2 > MICRO_MR && 40 > MICRO_NR && 280 > MICRO_NR1);
    }

    /// All im2col-family convolution paths — naive GEMM, blocked GEMM,
    /// arena-backed, and precomputed lowering (with and without arena) —
    /// produce bit-identical outputs, with fault-like specials in both the
    /// input and the weights.
    #[test]
    fn conv_paths_are_bit_identical(
        batch in 1usize..3,
        c_in in 1usize..4,
        c_out in 1usize..5,
        size in 3usize..9,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        values in vec(fault_like_f32(), 4..12),
        with_bias in any::<bool>(),
    ) {
        let input_len = batch * c_in * size * size;
        let weight_len = c_out * c_in * kernel * kernel;
        let input =
            Tensor::from_vec([batch, c_in, size, size], cycled(&values, input_len, 1, 0)).unwrap();
        let weight =
            Tensor::from_vec([c_out, c_in, kernel, kernel], cycled(&values, weight_len, 5, 1))
                .unwrap();
        let bias_t = Tensor::from_vec([c_out], cycled(&values, c_out, 3, 2)).unwrap();
        let bias = with_bias.then_some(&bias_t);
        let cfg = Conv2dCfg {
            stride,
            padding: Padding::Explicit(pad),
            groups: 1,
        };

        let naive = conv2d_kernel(&input, &weight, bias, cfg, GemmKernel::Naive).unwrap();
        let blocked = conv2d(&input, &weight, bias, cfg).unwrap();
        assert_bits_equal(naive.as_slice(), blocked.as_slice());

        let mut arena = ScratchArena::new();
        // Two rounds so the second consumes recycled (dirty) buffers.
        for _ in 0..2 {
            let with_arena = conv2d_with(&input, &weight, bias, cfg, &mut arena).unwrap();
            assert_bits_equal(naive.as_slice(), with_arena.as_slice());
        }

        let lowered = im2col_lower(&input, &weight, cfg).unwrap();
        let from_lowered = conv2d_from_lowered(&lowered, &weight, bias, None).unwrap();
        assert_bits_equal(naive.as_slice(), from_lowered.as_slice());
        let from_lowered_arena =
            conv2d_from_lowered(&lowered, &weight, bias, Some(&mut arena)).unwrap();
        assert_bits_equal(naive.as_slice(), from_lowered_arena.as_slice());
    }

    /// The batched (image-interleaved) convolution — plain, fused with the
    /// folded conv+bn(+ReLU/ReLU6) epilogue, and the single-channel probe
    /// row — is bit-identical to the per-image lowered path followed by the
    /// unfused `batch_norm`/`relu` chain, with fault-like specials in both
    /// operands and through dirty arena buffers.
    #[test]
    fn batched_conv_paths_are_bit_identical(
        batch in 1usize..4,
        c_in in 1usize..4,
        c_out in 1usize..5,
        size in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        values in vec(fault_like_f32(), 4..12),
        with_bias in any::<bool>(),
        act_pick in 0u8..3,
        channel_pick in 0usize..8,
        nan_mode in any::<bool>(),
    ) {
        // One NaN payload family per case, as in a real single-fault
        // campaign: either literal NaNs (propagating `f32::NAN`'s payload)
        // or infinities (whose `0 * Inf` / `Inf - Inf` collisions are
        // uniformly the `0xFFC00000` indefinite) — never both. Mixing the
        // two in one accumulation chain leaves the surviving payload to
        // x86 operand order, which the per-image (`n = spatial`) and
        // batched (`n = images * spatial`) calls of the *same* kernel can
        // resolve differently at the autovectorised loop's tail (see the
        // bit-identity notes on `gemm`).
        let values: Vec<f32> = values
            .iter()
            .map(|&v| match (nan_mode, v.is_nan(), v.is_infinite()) {
                (true, _, true) => f32::NAN,
                (false, true, _) => f32::INFINITY,
                _ => v,
            })
            .collect();
        let input_len = batch * c_in * size * size;
        let weight_len = c_out * c_in * kernel * kernel;
        let input =
            Tensor::from_vec([batch, c_in, size, size], cycled(&values, input_len, 1, 0)).unwrap();
        let weight =
            Tensor::from_vec([c_out, c_in, kernel, kernel], cycled(&values, weight_len, 5, 1))
                .unwrap();
        // Bias and batch-norm coefficients stay finite: a NaN coefficient
        // meeting an already-NaN conv sum is a two-distinct-NaN-payload
        // collision, whose surviving payload is operand-order-dependent on
        // x86 — and the bias/affine adds compile separately per path, so
        // no shared-kernel trick (see `gemm`'s `#[inline(never)]` note)
        // can pin them. With finite coefficients every elementwise op
        // propagates the sum's payload deterministically. NaN/±Inf stay
        // fully exercised through the input and weight operands.
        let finite = |t: f32| if t.is_finite() { t } else { 0.75 };
        let fin_cycled =
            |len: usize, stride: usize, off: usize| -> Vec<f32> {
                cycled(&values, len, stride, off).into_iter().map(finite).collect()
            };
        let bias_t = Tensor::from_vec([c_out], fin_cycled(c_out, 3, 2)).unwrap();
        let bias = with_bias.then_some(&bias_t);
        let cfg = Conv2dCfg {
            stride,
            padding: Padding::Explicit(pad),
            groups: 1,
        };
        let gamma = Tensor::from_vec([c_out], fin_cycled(c_out, 2, 1)).unwrap();
        let beta = Tensor::from_vec([c_out], fin_cycled(c_out, 4, 2)).unwrap();
        let mean = Tensor::from_vec([c_out], fin_cycled(c_out, 6, 0)).unwrap();
        let var =
            Tensor::from_fn([c_out], |i| (i as f32).mul_add(0.13, 0.5));
        let params = BatchNormParams {
            gamma: &gamma,
            beta: &beta,
            mean: &mean,
            var: &var,
            eps: 1e-5,
        };
        let act = match act_pick {
            0 => FusedActivation::None,
            1 => FusedActivation::Relu,
            _ => FusedActivation::Relu6,
        };

        // Per-image unfused reference: lowered conv, then batch_norm, then
        // the activation — the exact legacy forward chain. (The reference
        // must stay in the im2col family: 1x1-channel draws would send
        // `conv2d_kernel` down the direct depthwise loop, which skips
        // padded taps and is only value-identical under NaN/Inf weights.)
        let in_data = input.as_slice();
        let img_len = c_in * size * size;
        let mut unfused_rows = Vec::new();
        let mut plain_rows = Vec::new();
        let mut per_image_channel = Vec::new();
        let (scale, shift) = (0..c_out).map(|c| bn_channel_scale_shift(&params, c)).unzip::<f32, f32, Vec<_>, Vec<_>>();
        let channel = channel_pick % c_out;
        for n in 0..batch {
            let img = Tensor::from_vec(
                [1, c_in, size, size],
                in_data[n * img_len..][..img_len].to_vec(),
            )
            .unwrap();
            let lowered_img = im2col_lower(&img, &weight, cfg).unwrap();
            let plain = conv2d_from_lowered(&lowered_img, &weight, bias, None).unwrap();
            let bn = batch_norm(&plain, &params).unwrap();
            let activated = match act {
                FusedActivation::None => bn,
                FusedActivation::Relu => relu(&bn),
                FusedActivation::Relu6 => relu6(&bn),
            };
            unfused_rows.extend_from_slice(activated.as_slice());
            plain_rows.extend_from_slice(plain.as_slice());
            per_image_channel.extend(
                conv2d_channel_from_lowered(&lowered_img, &weight, bias, channel, None).unwrap(),
            );
        }

        let mut arena = ScratchArena::new();
        // Two rounds so the second consumes recycled (dirty) buffers; also
        // alternate the arena-less path.
        for round in 0..2 {
            let arena_opt = (round == 1).then_some(&mut arena);
            let blowered = match arena_opt {
                Some(a) => im2col_lower_batched(&input, &weight, cfg, Some(a)).unwrap(),
                None => im2col_lower_batched(&input, &weight, cfg, None).unwrap(),
            };
            let plain =
                conv2d_batched_from_lowered(&blowered, &weight, bias, None, None).unwrap();
            assert_bits_equal(&plain_rows, plain.as_slice());
            let ep = ConvEpilogue { bn: Some((&scale, &shift)), act };
            let fused = conv2d_batched_from_lowered(
                &blowered,
                &weight,
                bias,
                Some(&ep),
                Some(&mut arena),
            )
            .unwrap();
            assert_bits_equal(&unfused_rows, fused.as_slice());
            let probe =
                conv2d_channel_batched(&blowered, &weight, bias, channel, Some(&mut arena))
                    .unwrap();
            assert_bits_equal(&per_image_channel, &probe);
        }
    }
}
