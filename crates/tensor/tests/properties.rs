//! Property-based tests for tensor operators.

use proptest::prelude::*;
use sfi_tensor::ops::{self, Conv2dCfg};
use sfi_tensor::Tensor;

fn small_val() -> impl Strategy<Value = f32> {
    // Finite, moderate magnitudes so accumulated FP error stays bounded.
    (-4.0f32..4.0).prop_map(|v| (v * 16.0).round() / 16.0)
}

fn tensor_strategy(shape: [usize; 4]) -> impl Strategy<Value = Tensor> {
    let len: usize = shape.iter().product();
    proptest::collection::vec(small_val(), len)
        .prop_map(move |data| Tensor::from_vec(shape, data).expect("length matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The im2col path must agree with the direct reference convolution.
    #[test]
    fn conv_paths_agree(
        input in tensor_strategy([1, 3, 6, 6]),
        weight in tensor_strategy([4, 3, 3, 3]),
        stride in 1usize..3,
    ) {
        let cfg = Conv2dCfg::same(stride);
        let direct = ops::conv2d_direct(&input, &weight, None, cfg).unwrap();
        let fast = ops::conv2d_im2col(&input, &weight, None, cfg).unwrap();
        prop_assert!(direct.max_abs_diff(&fast).unwrap() < 1e-3);
    }

    /// Convolution is linear in the input: conv(a + b) == conv(a) + conv(b).
    #[test]
    fn conv_is_linear_in_input(
        a in tensor_strategy([1, 2, 5, 5]),
        b in tensor_strategy([1, 2, 5, 5]),
        weight in tensor_strategy([3, 2, 3, 3]),
    ) {
        let cfg = Conv2dCfg::same(1);
        let sum = ops::add(&a, &b).unwrap();
        let conv_sum = ops::conv2d(&sum, &weight, None, cfg).unwrap();
        let sum_conv = ops::add(
            &ops::conv2d(&a, &weight, None, cfg).unwrap(),
            &ops::conv2d(&b, &weight, None, cfg).unwrap(),
        ).unwrap();
        prop_assert!(conv_sum.max_abs_diff(&sum_conv).unwrap() < 1e-2);
    }

    /// ReLU is idempotent and never produces negatives.
    #[test]
    fn relu_idempotent_nonnegative(t in tensor_strategy([1, 2, 4, 4])) {
        let once = ops::relu(&t);
        let twice = ops::relu(&once);
        prop_assert_eq!(once.as_slice(), twice.as_slice());
        prop_assert!(once.iter().all(|v| v >= 0.0));
    }

    /// ReLU6 output always lies in [0, 6].
    #[test]
    fn relu6_bounded(t in tensor_strategy([1, 1, 4, 4])) {
        let out = ops::relu6(&t);
        prop_assert!(out.iter().all(|v| (0.0..=6.0).contains(&v)));
    }

    /// Softmax rows are probability distributions.
    #[test]
    fn softmax_is_distribution(data in proptest::collection::vec(small_val(), 20)) {
        let t = Tensor::from_vec([4, 5], data).unwrap();
        let s = ops::softmax(&t).unwrap();
        for b in 0..4 {
            let row: Vec<f32> = (0..5).map(|c| s.get([b, c]).unwrap()).collect();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    /// Softmax preserves argmax.
    #[test]
    fn softmax_preserves_argmax(data in proptest::collection::vec(-3.0f32..3.0, 6)) {
        let t = Tensor::from_vec([1, 6], data).unwrap();
        let s = ops::softmax(&t).unwrap();
        prop_assert_eq!(t.argmax(), s.argmax());
    }

    /// Global average pooling preserves the total mean.
    #[test]
    fn global_pool_preserves_mean(t in tensor_strategy([2, 3, 4, 4])) {
        let pooled = ops::global_avg_pool(&t).unwrap();
        let mean_in: f32 = t.iter().sum::<f32>() / t.len() as f32;
        let mean_out: f32 = pooled.iter().sum::<f32>() / pooled.len() as f32;
        prop_assert!((mean_in - mean_out).abs() < 1e-4);
    }

    /// add is commutative.
    #[test]
    fn add_commutes(a in tensor_strategy([1, 2, 3, 3]), b in tensor_strategy([1, 2, 3, 3])) {
        let ab = ops::add(&a, &b).unwrap();
        let ba = ops::add(&b, &a).unwrap();
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    /// Reshape round-trips preserve data.
    #[test]
    fn reshape_round_trip(t in tensor_strategy([2, 2, 3, 3])) {
        let flat = t.reshape([36]).unwrap();
        let back = flat.reshape([2, 2, 3, 3]).unwrap();
        prop_assert_eq!(t.as_slice(), back.as_slice());
    }

    /// flatten_index is a bijection onto 0..len.
    #[test]
    fn flatten_index_bijective(_unit in Just(())) {
        let t = Tensor::zeros([2, 3, 4, 5]);
        let mut seen = vec![false; t.len()];
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        let idx = t.flatten_index(&[n, c, h, w]).unwrap();
                        prop_assert!(!seen[idx]);
                        seen[idx] = true;
                    }
                }
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }
}
