//! Reusable `f32` scratch buffers for allocation-free inner loops.
//!
//! Fault campaigns evaluate thousands of faults per worker, and every
//! incremental re-execution historically allocated fresh im2col columns,
//! GEMM outputs, and intermediate activation tensors — only to free them a
//! few microseconds later. [`ScratchArena`] is a per-worker free list that
//! recycles those buffers across faults: `take` hands out a buffer (reusing
//! the best-fitting retired one), `recycle` returns it. The arena is
//! deliberately *not* thread-safe; each campaign worker owns one.

/// A free list of `f32` buffers with byte accounting.
///
/// # Example
///
/// ```
/// use sfi_tensor::ScratchArena;
///
/// let mut arena = ScratchArena::new();
/// let buf = arena.take_zeroed(128);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// arena.recycle(buf);
/// // The next take of a fitting size reuses the retired allocation.
/// let again = arena.take(64);
/// assert!(again.capacity() >= 128);
/// assert!(arena.peak_bytes() >= 128 * 4);
/// ```
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<f32>>,
    /// Bytes currently loaned out through `take`.
    loaned_bytes: usize,
    /// Bytes parked on the free list.
    free_bytes: usize,
    /// High-water mark of `loaned_bytes + free_bytes`.
    peak_bytes: usize,
    /// Non-empty `take` requests served over the arena's lifetime.
    takes: u64,
    /// `take` requests served from a recycled buffer (no allocation).
    reuses: u64,
}

/// Cumulative usage counters of one [`ScratchArena`], for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Non-empty buffer requests served.
    pub takes: u64,
    /// Requests served from a recycled buffer (no allocation).
    pub reuses: u64,
    /// High-water mark of bytes owned by or loaned from the arena.
    pub peak_bytes: u64,
}

/// Maximum number of parked buffers; beyond this, [`ScratchArena::recycle`]
/// keeps only the largest. A forward pass retires more buffers than it
/// borrows (non-conv activations are allocated by the plain ops), so an
/// uncapped free list — and the best-fit scan over it — would grow without
/// bound across a campaign's thousands of faults.
const MAX_FREE: usize = 32;

fn bytes_of(capacity: usize) -> usize {
    capacity * std::mem::size_of::<f32>()
}

impl ScratchArena {
    /// An empty arena holding no buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrows a buffer of exactly `len` elements with **unspecified
    /// contents** — the caller must overwrite every element before reading.
    ///
    /// Reuses the smallest free buffer whose capacity fits, or allocates.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            // Don't burn a parked buffer on a zero-length request (e.g. a
            // GEMM packing scratch that may never be used).
            return Vec::new();
        }
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j| buf.capacity() < self.free[j].capacity())
            {
                best = Some(i);
            }
        }
        self.takes += 1;
        let mut v = match best {
            Some(i) => {
                self.reuses += 1;
                let v = self.free.swap_remove(i);
                self.free_bytes = self.free_bytes.saturating_sub(bytes_of(v.capacity()));
                v
            }
            None => Vec::with_capacity(len),
        };
        // `resize` only writes the grown tail; recycled prefixes keep stale
        // values, which is the documented contract.
        v.resize(len, 0.0);
        self.loaned_bytes += bytes_of(v.capacity());
        self.peak_bytes = self.peak_bytes.max(self.loaned_bytes + self.free_bytes);
        v
    }

    /// Borrows a buffer of `len` zeros — for GEMM accumulators and other
    /// consumers that read before (or while) writing.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.take(len);
        v.fill(0.0);
        v
    }

    /// Returns a buffer to the free list for later reuse.
    ///
    /// The list is capped at `MAX_FREE` buffers, keeping the largest ones:
    /// once full, the buffer is simply dropped unless it beats the smallest
    /// parked buffer (which is dropped in its place).
    pub fn recycle(&mut self, buf: Vec<f32>) {
        let b = bytes_of(buf.capacity());
        self.loaned_bytes = self.loaned_bytes.saturating_sub(b);
        if buf.capacity() == 0 {
            return;
        }
        if self.free.len() >= MAX_FREE {
            let (i, min_cap) = self
                .free
                .iter()
                .enumerate()
                .map(|(i, v)| (i, v.capacity()))
                .min_by_key(|&(_, cap)| cap)
                .expect("free list is nonempty at the cap");
            if buf.capacity() <= min_cap {
                return;
            }
            let dropped = std::mem::replace(&mut self.free[i], buf);
            self.free_bytes = (self.free_bytes + b).saturating_sub(bytes_of(dropped.capacity()));
        } else {
            self.free_bytes += b;
            self.free.push(buf);
        }
        self.peak_bytes = self.peak_bytes.max(self.loaned_bytes + self.free_bytes);
    }

    /// High-water mark of bytes owned by or loaned from this arena.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// Number of buffers currently parked on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Cumulative usage counters (monotone over the arena's lifetime).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats { takes: self.takes, reuses: self.reuses, peak_bytes: self.peak_bytes as u64 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_requested_length() {
        let mut arena = ScratchArena::new();
        assert_eq!(arena.take(10).len(), 10);
        assert_eq!(arena.take(0).len(), 0);
    }

    #[test]
    fn recycle_then_take_reuses_allocation() {
        let mut arena = ScratchArena::new();
        let buf = arena.take(100);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        arena.recycle(buf);
        assert_eq!(arena.free_buffers(), 1);
        let again = arena.take(40);
        assert_eq!(again.len(), 40);
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.as_ptr(), ptr, "must reuse the retired buffer");
        assert_eq!(arena.free_buffers(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut arena = ScratchArena::new();
        let big = arena.take(1000);
        let small = arena.take(50);
        let (big_cap, small_cap) = (big.capacity(), small.capacity());
        arena.recycle(big);
        arena.recycle(small);
        let got = arena.take(30);
        assert_eq!(got.capacity(), small_cap.min(big_cap));
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let mut arena = ScratchArena::new();
        let mut buf = arena.take(8);
        buf.fill(7.5);
        arena.recycle(buf);
        let clean = arena.take_zeroed(8);
        assert!(clean.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn free_list_is_capped_keeping_largest() {
        let mut arena = ScratchArena::new();
        // Fill the list with buffers of increasing size.
        let bufs: Vec<_> = (0..MAX_FREE).map(|i| arena.take(8 + i)).collect();
        for b in bufs {
            arena.recycle(b);
        }
        assert_eq!(arena.free_buffers(), MAX_FREE);
        // A tiny buffer at the cap is dropped outright.
        arena.recycle(Vec::with_capacity(1));
        assert_eq!(arena.free_buffers(), MAX_FREE);
        assert!(arena.take(1).capacity() >= 8, "tiny buffer must not be parked");
        // A large buffer evicts the smallest parked one.
        let huge = Vec::with_capacity(10_000);
        arena.recycle(huge);
        assert_eq!(arena.free_buffers(), MAX_FREE);
        assert_eq!(arena.take(10_000).capacity(), 10_000);
    }

    #[test]
    fn zero_length_take_and_recycle_leave_list_alone() {
        let mut arena = ScratchArena::new();
        let parked = arena.take(64);
        arena.recycle(parked);
        assert_eq!(arena.free_buffers(), 1);
        let empty = arena.take(0);
        assert_eq!(empty.capacity(), 0);
        assert_eq!(arena.free_buffers(), 1, "take(0) must not steal a parked buffer");
        arena.recycle(empty);
        assert_eq!(arena.free_buffers(), 1, "capacity-0 buffers are not parked");
    }

    #[test]
    fn stats_count_takes_and_reuses() {
        let mut arena = ScratchArena::new();
        let a = arena.take(64);
        arena.recycle(a);
        let _ = arena.take(32); // served from the recycled buffer
        let _ = arena.take(0); // zero-length: not counted
        let stats = arena.stats();
        assert_eq!(stats.takes, 2);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.peak_bytes, arena.peak_bytes() as u64);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut arena = ScratchArena::new();
        let a = arena.take(100);
        let b = arena.take(200);
        let peak = arena.peak_bytes();
        assert!(peak >= (a.capacity() + b.capacity()) * 4);
        arena.recycle(a);
        arena.recycle(b);
        // Recycling never lowers the peak.
        assert!(arena.peak_bytes() >= peak);
        // Reusing a parked buffer does not raise it either.
        let _ = arena.take(100);
        assert_eq!(arena.peak_bytes(), peak.max(arena.peak_bytes()));
    }
}
