use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum tensor rank supported by the crate.
///
/// CNN inference needs at most 4 dimensions (`N × C × H × W`).
pub const MAX_RANK: usize = 4;

/// The dimensions of a [`Tensor`](crate::Tensor), rank 1 to [`MAX_RANK`].
///
/// `Shape` is a small value type (`Copy`) storing the dimensions inline.
/// Feature maps use the NCHW convention: `[batch, channels, height, width]`.
///
/// # Example
///
/// ```
/// use sfi_tensor::Shape;
///
/// let s = Shape::new(&[1, 16, 32, 32]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.len(), 16 * 32 * 32);
/// assert_eq!(s.dims(), &[1, 16, 32, 32]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or longer than [`MAX_RANK`]. Use
    /// [`Shape::try_new`] for a fallible variant.
    pub fn new(dims: &[usize]) -> Self {
        Self::try_new(dims).expect("shape rank must be between 1 and 4")
    }

    /// Creates a shape from a slice of dimensions, returning `None` if the
    /// rank is zero or larger than [`MAX_RANK`].
    pub fn try_new(dims: &[usize]) -> Option<Self> {
        if dims.is_empty() || dims.len() > MAX_RANK {
            return None;
        }
        let mut inner = [1usize; MAX_RANK];
        inner[..dims.len()].copy_from_slice(dims);
        Some(Self { dims: inner, rank: dims.len() })
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The dimensions as a slice of length [`rank`](Self::rank).
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Total number of elements (product of the dimensions).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimension `i`, or `None` when `i >= rank`.
    pub fn dim(&self, i: usize) -> Option<usize> {
        self.dims().get(i).copied()
    }

    /// Batch dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn n(&self) -> usize {
        assert_eq!(self.rank, 4, "n() requires an NCHW shape");
        self.dims[0]
    }

    /// Channel dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn c(&self) -> usize {
        assert_eq!(self.rank, 4, "c() requires an NCHW shape");
        self.dims[1]
    }

    /// Height dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn h(&self) -> usize {
        assert_eq!(self.rank, 4, "h() requires an NCHW shape");
        self.dims[2]
    }

    /// Width dimension of an NCHW shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not rank 4.
    pub fn w(&self) -> usize {
        assert_eq!(self.rank, 4, "w() requires an NCHW shape");
        self.dims[3]
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims())
    }
}

impl From<[usize; 1]> for Shape {
    fn from(d: [usize; 1]) -> Self {
        Shape::new(&d)
    }
}

impl From<[usize; 2]> for Shape {
    fn from(d: [usize; 2]) -> Self {
        Shape::new(&d)
    }
}

impl From<[usize; 3]> for Shape {
    fn from(d: [usize; 3]) -> Self {
        Shape::new(&d)
    }
}

impl From<[usize; 4]> for Shape {
    fn from(d: [usize; 4]) -> Self {
        Shape::new(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let s = Shape::new(&[2, 3, 4, 5]);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.len(), 120);
        assert_eq!((s.n(), s.c(), s.h(), s.w()), (2, 3, 4, 5));
        assert_eq!(s.dim(1), Some(3));
        assert_eq!(s.dim(4), None);
    }

    #[test]
    fn try_new_rejects_bad_ranks() {
        assert!(Shape::try_new(&[]).is_none());
        assert!(Shape::try_new(&[1, 2, 3, 4, 5]).is_none());
        assert!(Shape::try_new(&[7]).is_some());
    }

    #[test]
    fn equality_ignores_padding_dims() {
        // [2, 3] must compare equal regardless of internal padding.
        let a = Shape::new(&[2, 3]);
        let b = Shape::try_new(&[2, 3]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, Shape::new(&[2, 3, 1]));
    }

    #[test]
    fn display_matches_debug_slice() {
        assert_eq!(Shape::new(&[1, 16, 8, 8]).to_string(), "[1, 16, 8, 8]");
    }

    #[test]
    fn zero_sized_dims() {
        let s = Shape::new(&[0, 4]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "requires an NCHW shape")]
    fn nchw_accessor_panics_on_rank_2() {
        Shape::new(&[2, 3]).n();
    }

    #[test]
    fn from_arrays() {
        assert_eq!(Shape::from([3]).rank(), 1);
        assert_eq!(Shape::from([3, 4]).rank(), 2);
        assert_eq!(Shape::from([3, 4, 5]).rank(), 3);
        assert_eq!(Shape::from([3, 4, 5, 6]).rank(), 4);
    }
}
