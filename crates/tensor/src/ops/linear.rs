use crate::{Shape, Tensor, TensorError};

use super::gemm::gemm;
use super::microkernel::gemm_row;

/// Fully-connected layer: `out[b][o] = Σ_i input[b][i] * weight[o][i] + bias[o]`.
///
/// `input` is `[batch, in_features]`, `weight` is `[out_features,
/// in_features]` (PyTorch layout), `bias` (when present) is `[out_features]`.
///
/// # Errors
///
/// Returns an error when the operand ranks are wrong, the feature counts
/// disagree, or the bias length differs from `out_features`.
///
/// # Example
///
/// ```
/// use sfi_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), sfi_tensor::TensorError> {
/// let x = Tensor::from_vec([1, 2], vec![1.0, 2.0])?;
/// let w = Tensor::from_vec([1, 2], vec![3.0, 4.0])?;
/// let y = ops::linear(&x, &w, None)?;
/// assert_eq!(y.as_slice(), &[11.0]);
/// # Ok(())
/// # }
/// ```
pub fn linear(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<Tensor, TensorError> {
    const OP: &str = "linear";
    if input.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 2,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 2,
            actual: weight.shape().rank(),
        });
    }
    let batch = input.shape().dims()[0];
    let in_features = input.shape().dims()[1];
    let out_features = weight.shape().dims()[0];
    if weight.shape().dims()[1] != in_features {
        return Err(TensorError::ShapeMismatch { op: OP, lhs: input.shape(), rhs: weight.shape() });
    }
    if let Some(b) = bias {
        if b.shape() != Shape::new(&[out_features]) {
            return Err(TensorError::ShapeMismatch {
                op: OP,
                lhs: b.shape(),
                rhs: Shape::new(&[out_features]),
            });
        }
    }
    let mut out = Tensor::zeros([batch, out_features]);
    // out[b, o] = input[b, :] . weight[o, :] — gemm with weight used as the
    // rhs would need a transpose, so run one dot-product GEMM per batch row
    // with roles swapped: weight [O, I] x input_row [I, 1].
    let out_data = out.as_mut_slice();
    for b in 0..batch {
        let x_row = &input.as_slice()[b * in_features..(b + 1) * in_features];
        let dst = &mut out_data[b * out_features..(b + 1) * out_features];
        gemm(out_features, in_features, 1, weight.as_slice(), x_row, dst);
    }
    if let Some(bias) = bias {
        let b_data = bias.as_slice();
        for b in 0..batch {
            let dst = &mut out_data[b * out_features..(b + 1) * out_features];
            for (v, &bv) in dst.iter_mut().zip(b_data) {
                *v += bv;
            }
        }
    }
    Ok(out)
}

/// One output feature of [`linear`], bit-identically: the single
/// dot-product row `row` per batch image plus that row's bias term.
/// Returns `batch` values.
///
/// The fully-connected counterpart of the single-channel convergence probe
/// (see `conv2d_channel_from_lowered`): a fault in `weight[row, :]` or
/// `bias[row]` can only reach this output feature, and the per-element
/// accumulation order of the lone GEMM row matches the full kernel's, so
/// the values carry exactly the bits [`linear`] would produce for them.
///
/// # Errors
///
/// Same conditions as [`linear`], plus [`TensorError::InvalidConfig`] when
/// `row` is out of range.
pub fn linear_row(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    row: usize,
) -> Result<Vec<f32>, TensorError> {
    const OP: &str = "linear_row";
    if input.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 2,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 2,
            actual: weight.shape().rank(),
        });
    }
    let batch = input.shape().dims()[0];
    let in_features = input.shape().dims()[1];
    let out_features = weight.shape().dims()[0];
    if weight.shape().dims()[1] != in_features {
        return Err(TensorError::ShapeMismatch { op: OP, lhs: input.shape(), rhs: weight.shape() });
    }
    if let Some(b) = bias {
        if b.shape() != Shape::new(&[out_features]) {
            return Err(TensorError::ShapeMismatch {
                op: OP,
                lhs: b.shape(),
                rhs: Shape::new(&[out_features]),
            });
        }
    }
    if row >= out_features {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("row {row} out of range for {out_features} output features"),
        });
    }
    let w_row = &weight.as_slice()[row * in_features..(row + 1) * in_features];
    let mut out = vec![0.0f32; batch];
    // Batch the images as GEMM columns instead of running one dot product
    // per image: a lone `gemm(1, k, 1, ..)` is a single serial dependency
    // chain (every add waits on the previous one), while the transposed
    // `1 x k x batch` row multiply advances one independent chain per
    // image — measured 6.5-7.5x on the ResNet-20 head, ~2.5-2.9x net of
    // the transpose below. Bit-identity is untouched: `out[b]` still
    // receives `w_row[ki] * input[b][ki]` one at a time in increasing
    // `ki` order, exactly the per-image dot's chain.
    let mut xt = vec![0.0f32; in_features * batch];
    for b in 0..batch {
        let x_row = &input.as_slice()[b * in_features..(b + 1) * in_features];
        for (ki, &v) in x_row.iter().enumerate() {
            xt[ki * batch + b] = v;
        }
    }
    gemm_row(in_features, batch, w_row, &xt, &mut out);
    if let Some(bias) = bias {
        let bv = bias.as_slice()[row];
        for v in out.iter_mut() {
            *v += bv;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_product_with_bias() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 0.0, 2.0, 0.0, 1.0, 0.0]).unwrap();
        let w = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec([2], vec![0.5, -0.5]).unwrap();
        let y = linear(&x, &w, Some(&b)).unwrap();
        // row 0: [1*1+2*3, 1*4+2*6] + bias = [7.5, 15.5]
        // row 1: [2, 5] + bias = [2.5, 4.5]
        assert_eq!(y.as_slice(), &[7.5, 15.5, 2.5, 4.5]);
    }

    #[test]
    fn row_matches_full_kernel() {
        let x = Tensor::from_fn([3, 5], |i| (i as f32).sin());
        let mut w = Tensor::from_fn([4, 5], |i| (i as f32 * 0.7).cos());
        w.as_mut_slice()[7] = f32::NAN;
        w.as_mut_slice()[11] = f32::NEG_INFINITY;
        let b = Tensor::from_fn([4], |i| i as f32 * 0.3 - 0.5);
        let full = linear(&x, &w, Some(&b)).unwrap();
        for row in 0..4 {
            let vals = linear_row(&x, &w, Some(&b), row).unwrap();
            assert_eq!(vals.len(), 3);
            for (batch, v) in vals.iter().enumerate() {
                let want = full.as_slice()[batch * 4 + row];
                assert_eq!(v.to_bits(), want.to_bits(), "row {row}, image {batch}");
            }
        }
        assert!(linear_row(&x, &w, Some(&b), 4).is_err(), "out-of-range row must be rejected");
    }

    #[test]
    fn rejects_feature_mismatch() {
        let x = Tensor::zeros([1, 3]);
        let w = Tensor::zeros([2, 4]);
        assert!(linear(&x, &w, None).is_err());
    }

    #[test]
    fn rejects_bad_bias() {
        let x = Tensor::zeros([1, 3]);
        let w = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([3]);
        assert!(linear(&x, &w, Some(&b)).is_err());
    }

    #[test]
    fn rejects_rank_one_input() {
        let x = Tensor::zeros([3]);
        let w = Tensor::zeros([2, 3]);
        assert!(linear(&x, &w, None).is_err());
    }

    #[test]
    fn batch_independence() {
        let w = Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap();
        let single = linear(&Tensor::from_vec([1, 2], vec![3.0, 4.0]).unwrap(), &w, None).unwrap();
        let batched =
            linear(&Tensor::from_vec([2, 2], vec![9.0, 9.0, 3.0, 4.0]).unwrap(), &w, None).unwrap();
        assert_eq!(batched.get([1, 0]), single.get([0, 0]));
    }
}
