/// Column-block width of [`gemm_blocked`]: the `n` extent of one packed B
/// panel. 256 columns x 128 rows of f32 is a 128 KiB panel — comfortably
/// inside L2 on every target we care about.
const BLOCK_N: usize = 256;

/// Row-block depth of [`gemm_blocked`]: the `k` extent of one packed B
/// panel.
const BLOCK_K: usize = 128;

/// B-matrix footprint that used to gate the packed-row path when it was
/// the dispatch tier above the naive kernel. The dispatch now lives in
/// [`gemm_selected_kernel`](super::gemm_selected_kernel) (multiply-count
/// floor, not B footprint); this constant survives only for the direct
/// `gemm_packed` tests that straddle it.
#[cfg(test)]
const PACK_THRESHOLD_BYTES: usize = 1 << 20;

/// Row-block height of [`gemm_rows`]: how many output rows share one
/// streamed B row while it is L1-hot. `MR` C rows plus one B row stay well
/// inside L1 while B's L1 miss count drops by `MR`x.
const MR: usize = 4;

/// Row-major matrix multiply: `c[m][n] += a[m][k] * b[k][n]`.
///
/// `c` must be zero-initialised (or hold a partial accumulation the caller
/// wants to extend). The loop order is `m, k, n` so the innermost loop
/// streams both `b` and `c` rows sequentially, which the compiler
/// auto-vectorises; this is the reference kernel of the `im2col`
/// convolution path and the baseline [`gemm_blocked`] must match
/// bit-for-bit.
///
/// # Panics
///
/// Panics when the slice lengths do not match `m*k` / `k*n` / `m*n` —
/// in release builds too, since a silent mis-multiply would corrupt fault
/// classifications.
///
/// `#[inline(never)]` is load-bearing for bit identity, not a perf tweak
/// (the loops dwarf one call). When an f32 add meets **two NaN operands
/// with different payloads**, x86 returns the *first* operand's payload —
/// and LLVM freely commutes `fadd` operands, so separately inlined copies
/// of this loop can disagree on which NaN survives an
/// accumulator-meets-term collision. One shared compiled copy pins one
/// operand order per code path; the same attribute guards the kernels
/// below.
///
/// One asymmetry survives even inside the single copy: the autovectorised
/// loop body and its scalar tail may commute the add differently, and
/// which columns land in the tail depends on `n`. This only matters when
/// a single accumulation chain holds **two distinct NaN payloads**
/// (observed: a `0.0 * -Inf` indefinite `0xFFC00000` meeting a propagated
/// `0x7FC00000` input NaN, flipping between the per-image `n = spatial`
/// and batched `n = images * spatial` calls at opt-level 2). Single-fault
/// campaigns cannot produce that state — one fault value yields one
/// payload family (a NaN fault propagates its own quietened payload and
/// creates no infinities; an Inf or overflow fault produces NaNs only via
/// `0 * Inf` / `Inf - Inf`, which are uniformly the `0xFFC00000`
/// indefinite) — so batched and per-image execution agree bit-for-bit
/// there, which is what the `kernel_bitident` and `plan_equivalence`
/// suites pin. Chains mixing two payload families (only reachable with
/// faults in *both* operands of one GEMM) keep value semantics but may
/// legitimately differ in which NaN payload survives.
#[inline(never)]
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(c.len(), m * n, "gemm: out length");
    for mi in 0..m {
        let a_row = &a[mi * k..(mi + 1) * k];
        let c_row = &mut c[mi * n..(mi + 1) * n];
        // No zero-skipping here: `0.0 * NaN` must stay NaN so that faults
        // which drive activations to NaN/Inf propagate exactly as IEEE-754
        // arithmetic dictates.
        for (ki, &a_v) in a_row.iter().enumerate() {
            let b_row = &b[ki * n..(ki + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_v * b_v;
            }
        }
    }
}

/// Self-dispatching [`gemm`], bit-identical to the naive kernel.
///
/// Routes through the register-tiled microkernel layer
/// ([`gemm_micro`](super::gemm_micro) for `m >= 2`,
/// [`gemm_row_lanes`](super::gemm_row_lanes) for single-row problems) with
/// the naive loop retained for problems too small to amortize packing —
/// see [`gemm_selected_kernel`](super::gemm_selected_kernel) for the
/// policy and the `kernels` bench smoke gate for the
/// no-tier-slower-than-naive guarantee. Every tier accumulates each output
/// element's `k` partial products one at a time in increasing-`ki` order,
/// so the choice is invisible in the result bits (NaN/±Inf payloads
/// included; see the `kernel_bitident` proptests).
///
/// # Panics
///
/// Same length checks as [`gemm`].
pub fn gemm_blocked(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut packed = Vec::new();
    gemm_blocked_with(m, k, n, a, b, c, &mut packed);
}

/// [`gemm_blocked`] with a caller-provided panel buffer, for hot loops that
/// reuse the packing scratch across calls (the arena-backed conv path).
///
/// `packed` is resized as needed and holds unspecified contents on return.
///
/// # Panics
///
/// Same length checks as [`gemm`].
pub fn gemm_blocked_with(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packed: &mut Vec<f32>,
) {
    super::microkernel::gemm_dispatch(m, k, n, a, b, c, packed);
}

/// Row-blocked [`gemm`]: `MR` output rows consume each B row while it is
/// L1-hot instead of one row at a time cycling the whole of B per pass.
///
/// For a fixed output row `mi`, `ki` still runs `0..k` in increasing order,
/// so every output element receives its partial products in exactly the
/// order [`gemm`] produces them; row-blocking only changes which
/// *independent* output rows are interleaved. The innermost loop is kept a
/// textual copy of [`gemm`]'s so the compiler emits the same per-element
/// arithmetic (the `kernel_bitident` proptests pin this down, NaN/Inf
/// payloads included).
///
/// Not currently selected by [`gemm_blocked`]'s dispatch: with B resident
/// in L2 it measured consistently *slower* than the naive loop on the
/// ResNet-20 im2col shapes (0.74-0.87x), so the heuristic routes small-B
/// problems to [`gemm`] instead. The kernel stays public so the trade-off
/// remains measurable if cache geometries shift.
///
/// # Panics
///
/// Same length checks as [`gemm`].
#[inline(never)]
pub fn gemm_rows(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(c.len(), m * n, "gemm: out length");
    for mi0 in (0..m).step_by(MR) {
        let m_hi = (mi0 + MR).min(m);
        for ki in 0..k {
            let b_row = &b[ki * n..(ki + 1) * n];
            for mi in mi0..m_hi {
                let a_v = a[mi * k + ki];
                let c_row = &mut c[mi * n..(mi + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_v * b_v;
                }
            }
        }
    }
}

/// The always-packing tile kernel behind [`gemm_blocked`]: no size
/// heuristic, every call tiles over `n`/`k` and packs B panels. Prefer
/// [`gemm_blocked`], which self-selects; this entry point exists so the
/// packing path stays testable (and measurable) at shapes below the
/// delegation threshold. Bit-identical to [`gemm`].
///
/// `packed` is resized as needed and holds unspecified contents on return.
///
/// # Panics
///
/// Same length checks as [`gemm`].
#[inline(never)]
pub fn gemm_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packed: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(c.len(), m * n, "gemm: out length");
    // One up-front fill instead of per-tile `resize` churn as tail tiles
    // shrink and full tiles re-grow the buffer.
    if packed.len() < BLOCK_K * BLOCK_N {
        packed.resize(BLOCK_K * BLOCK_N, 0.0);
    }
    for n0 in (0..n).step_by(BLOCK_N) {
        let nw = BLOCK_N.min(n - n0);
        for k0 in (0..k).step_by(BLOCK_K) {
            let kw = BLOCK_K.min(k - k0);
            for ki in 0..kw {
                packed[ki * nw..(ki + 1) * nw]
                    .copy_from_slice(&b[(k0 + ki) * n + n0..(k0 + ki) * n + n0 + nw]);
            }
            for mi in 0..m {
                let a_row = &a[mi * k + k0..mi * k + k0 + kw];
                let c_row = &mut c[mi * n + n0..mi * n + n0 + nw];
                for (ki, &a_v) in a_row.iter().enumerate() {
                    let b_row = &packed[ki * nw..(ki + 1) * nw];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_v * b_v;
                    }
                }
            }
        }
    }
}

/// The packed *and* row-blocked tile kernel: B panels are packed exactly as
/// in [`gemm_packed`], and within each panel `MR` output rows consume every
/// packed B row while it is L1-hot (the [`gemm_rows`] interleaving).
///
/// **Retired from dispatch.** This was [`gemm_blocked`]'s above-L2 tier
/// until the register-tiled microkernel superseded it: the row-blocked
/// interleave still streams C from memory `k / BLOCK_K` times per panel
/// column and measured *slower than naive* on `32x288x512` (0.81x, see
/// BENCH_kernels.json history) — dispatch must never select a
/// measured-slower tier, so [`gemm_micro`](super::gemm_micro) (which holds
/// C in registers across each `k` block) replaced it. The kernel stays
/// public so the trade-off remains measurable.
///
/// Bit-identity: for a fixed output element `c[mi][ni]`, the `ki` partial
/// products still arrive one at a time in increasing `ki` order — panel
/// tiling picks *which* `(k0, n0)` rectangle is active and row blocking
/// picks *which independent rows* interleave, but neither reorders any
/// single element's accumulation chain. The innermost loop is a textual
/// copy of [`gemm`]'s, so the compiler emits the same per-element
/// arithmetic (pinned by the `kernel_bitident` proptests, NaN/±Inf
/// payloads included).
///
/// `packed` is resized as needed and holds unspecified contents on return.
///
/// # Panics
///
/// Same length checks as [`gemm`].
#[inline(never)]
pub fn gemm_packed_rows(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    packed: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(c.len(), m * n, "gemm: out length");
    if packed.len() < BLOCK_K * BLOCK_N {
        packed.resize(BLOCK_K * BLOCK_N, 0.0);
    }
    for n0 in (0..n).step_by(BLOCK_N) {
        let nw = BLOCK_N.min(n - n0);
        for k0 in (0..k).step_by(BLOCK_K) {
            let kw = BLOCK_K.min(k - k0);
            for ki in 0..kw {
                packed[ki * nw..(ki + 1) * nw]
                    .copy_from_slice(&b[(k0 + ki) * n + n0..(k0 + ki) * n + n0 + nw]);
            }
            for mi0 in (0..m).step_by(MR) {
                let m_hi = (mi0 + MR).min(m);
                for ki in 0..kw {
                    let b_row = &packed[ki * nw..(ki + 1) * nw];
                    for mi in mi0..m_hi {
                        let a_v = a[mi * k + k0 + ki];
                        let c_row = &mut c[mi * n + n0..mi * n + n0 + nw];
                        for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                            *c_v += a_v * b_v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let mut c = vec![0.0; 6];
        gemm(2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm(1, 1, 1, &a, &b, &mut c);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    fn rectangular_shapes() {
        // 1x3 * 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = vec![0.0; 2];
        gemm(1, 3, 2, &a, &b, &mut c);
        assert_eq!(c, vec![1.0 + 3.0, 2.0 + 3.0]);
    }

    #[test]
    #[should_panic(expected = "gemm: lhs length")]
    fn length_checks_hold_in_release() {
        let a = vec![0.0; 3];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
    }

    /// Deterministic pseudo-random fill touching negatives and varied
    /// magnitudes.
    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 1000) as f32 * 0.013 - 6.5
            })
            .collect()
    }

    #[test]
    fn packed_matches_naive_bitwise_across_block_boundaries() {
        // Shapes straddling the BLOCK_N/BLOCK_K boundaries, including the
        // exact block sizes and one-past cases. `gemm_packed` is called
        // directly so the tile-and-pack path is exercised even below the
        // delegation threshold; `packed` is reused dirty across shapes.
        let mut packed = Vec::new();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (4, BLOCK_K, BLOCK_N),
            (4, BLOCK_K + 1, BLOCK_N + 1),
            (2, 300, 17),
            (5, 17, 700),
            (16, 144, 1024),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c0 = fill(m * n, 3); // nonzero accumulator base
            let mut c1 = c0.clone();
            gemm(m, k, n, &a, &b, &mut c0);
            gemm_packed(m, k, n, &a, &b, &mut c1, &mut packed);
            let same = c0.iter().zip(&c1).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "({m},{k},{n}) diverged");
        }
    }

    #[test]
    fn blocked_takes_packed_path_above_threshold_bitwise() {
        // Large enough that the dispatch leaves the naive tier (historically
        // the PACK_THRESHOLD_BYTES boundary; today the microkernel's
        // multiply floor) — gemm_blocked must tile and still match bitwise.
        let (m, k, n) = (3usize, 520usize, 520usize);
        assert!(k * n * std::mem::size_of::<f32>() > PACK_THRESHOLD_BYTES);
        let a = fill(m * k, 4);
        let b = fill(k * n, 5);
        let mut c0 = fill(m * n, 6);
        let mut c1 = c0.clone();
        gemm(m, k, n, &a, &b, &mut c0);
        gemm_blocked(m, k, n, &a, &b, &mut c1);
        let same = c0.iter().zip(&c1).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "({m},{k},{n}) diverged");
    }

    #[test]
    fn rows_matches_naive_bitwise_including_nan_inf() {
        // Called directly — the dispatch heuristic never selects this
        // kernel — so the bit-identity guarantee holds if it ever returns
        // to the hot path. Row counts straddle the MR boundary.
        for &(m, k, n) in &[(1usize, 7usize, 300usize), (MR, 33, 256), (MR * 2 + 3, 40, 300)] {
            let a = fill(m * k, 11);
            let mut b = fill(k * n, 12);
            b[0] = f32::NAN;
            b[n] = f32::INFINITY;
            b[2 * n - 1] = f32::NEG_INFINITY;
            let mut a2 = a.clone();
            a2[k - 1] = f32::NAN;
            a2[0] = 0.0; // 0 * Inf => NaN in row 0
            let mut c0 = fill(m * n, 13);
            let mut c1 = c0.clone();
            gemm(m, k, n, &a2, &b, &mut c0);
            gemm_rows(m, k, n, &a2, &b, &mut c1);
            let same = c0.iter().zip(&c1).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "({m},{k},{n}) diverged");
        }
    }

    #[test]
    fn packed_propagates_nan_and_inf_bitwise() {
        let (m, k, n) = (3usize, 140usize, 300usize);
        let mut a = fill(m * k, 9);
        let mut b = fill(k * n, 10);
        a[5] = f32::NAN;
        a[135] = f32::INFINITY;
        b[17] = f32::NEG_INFINITY;
        b[k * n - 1] = f32::NAN;
        let mut c0 = vec![0.0; m * n];
        let mut c1 = vec![0.0; m * n];
        let mut packed = Vec::new();
        gemm(m, k, n, &a, &b, &mut c0);
        gemm_packed(m, k, n, &a, &b, &mut c1, &mut packed);
        let same = c0.iter().zip(&c1).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "NaN/Inf propagation diverged");
    }
}
