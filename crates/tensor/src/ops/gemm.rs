/// Row-major matrix multiply: `c[m][n] += a[m][k] * b[k][n]`.
///
/// `c` must be zero-initialised (or hold a partial accumulation the caller
/// wants to extend). The loop order is `m, k, n` so the innermost loop
/// streams both `b` and `c` rows sequentially, which the compiler
/// auto-vectorises; this is the workhorse of the `im2col` convolution path.
///
/// # Panics
///
/// Panics in debug builds when the slice lengths do not match
/// `m*k` / `k*n` / `m*n`.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k, "gemm: lhs length");
    debug_assert_eq!(b.len(), k * n, "gemm: rhs length");
    debug_assert_eq!(c.len(), m * n, "gemm: out length");
    for mi in 0..m {
        let a_row = &a[mi * k..(mi + 1) * k];
        let c_row = &mut c[mi * n..(mi + 1) * n];
        // No zero-skipping here: `0.0 * NaN` must stay NaN so that faults
        // which drive activations to NaN/Inf propagate exactly as IEEE-754
        // arithmetic dictates.
        for (ki, &a_v) in a_row.iter().enumerate() {
            let b_row = &b[ki * n..(ki + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_v * b_v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2x3
        let mut c = vec![0.0; 6];
        gemm(2, 2, 3, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm(1, 1, 1, &a, &b, &mut c);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    fn rectangular_shapes() {
        // 1x3 * 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = vec![0.0; 2];
        gemm(1, 3, 2, &a, &b, &mut c);
        assert_eq!(c, vec![1.0 + 3.0, 2.0 + 3.0]);
    }
}
