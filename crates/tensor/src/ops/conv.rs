use crate::{ScratchArena, Shape, Tensor, TensorError};

use super::gemm::{gemm, gemm_blocked_with};
use super::microkernel::gemm_row;

/// Spatial padding policy for [`conv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Padding {
    /// Symmetric zero padding of `(kernel - 1) / 2` pixels, preserving the
    /// spatial size for odd kernels at stride 1.
    Same,
    /// Explicit symmetric zero padding in pixels.
    Explicit(usize),
}

/// Configuration of a 2-D convolution: stride, padding, and channel groups.
///
/// # Example
///
/// ```
/// use sfi_tensor::ops::{Conv2dCfg, Padding};
///
/// let cfg = Conv2dCfg::same(1);
/// assert_eq!(cfg.stride, 1);
/// assert_eq!(cfg.padding, Padding::Same);
/// assert_eq!(cfg.groups, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dCfg {
    /// Stride applied in both spatial dimensions.
    pub stride: usize,
    /// Zero-padding policy.
    pub padding: Padding,
    /// Number of channel groups; `groups == in_channels` is a depthwise
    /// convolution.
    pub groups: usize,
}

impl Conv2dCfg {
    /// Stride-`s` convolution with "same" padding and a single group.
    pub fn same(stride: usize) -> Self {
        Self { stride, padding: Padding::Same, groups: 1 }
    }

    /// Stride-`s` convolution with no padding and a single group.
    pub fn valid(stride: usize) -> Self {
        Self { stride, padding: Padding::Explicit(0), groups: 1 }
    }

    /// Returns a copy with the group count replaced.
    pub fn with_groups(mut self, groups: usize) -> Self {
        self.groups = groups;
        self
    }

    fn resolve_padding(&self, kernel: usize) -> usize {
        match self.padding {
            Padding::Same => (kernel - 1) / 2,
            Padding::Explicit(p) => p,
        }
    }
}

/// GEMM kernel selector for the `im2col` convolution path.
///
/// Both kernels are bit-identical (see [`gemm_blocked`](super::gemm_blocked));
/// `Naive` is retained so benches and ablations can measure the historical
/// unblocked path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GemmKernel {
    /// Cache-blocked kernel with a packed B panel (the default).
    #[default]
    Blocked,
    /// Plain m/k/n triple loop — the pre-optimization reference kernel.
    Naive,
}

struct ConvDims {
    batch: usize,
    c_in: usize,
    h_in: usize,
    w_in: usize,
    c_out: usize,
    c_in_per_group: usize,
    k_h: usize,
    k_w: usize,
    pad: usize,
    h_out: usize,
    w_out: usize,
}

impl ConvDims {
    /// Whether [`conv2d`] dispatches this shape to the depthwise kernel
    /// (which never lowers) instead of the `im2col` + GEMM path.
    fn is_depthwise(&self, cfg: Conv2dCfg) -> bool {
        cfg.groups == self.c_in && self.c_out == self.c_in && self.c_in_per_group == 1
    }
}

fn validate(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<ConvDims, TensorError> {
    const OP: &str = "conv2d";
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: weight.shape().rank(),
        });
    }
    let (batch, c_in, h_in, w_in) =
        (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let (c_out, c_w, k_h, k_w) =
        (weight.shape().n(), weight.shape().c(), weight.shape().h(), weight.shape().w());
    if cfg.stride == 0 {
        return Err(TensorError::InvalidConfig { op: OP, reason: "stride must be nonzero".into() });
    }
    if cfg.groups == 0 || c_in % cfg.groups != 0 || c_out % cfg.groups != 0 {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!(
                "groups {} must divide in channels {} and out channels {}",
                cfg.groups, c_in, c_out
            ),
        });
    }
    let c_in_per_group = c_in / cfg.groups;
    if c_w != c_in_per_group {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!(
                "weight expects {c_w} input channels per group, input provides {c_in_per_group}"
            ),
        });
    }
    if k_h == 0 || k_w == 0 {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: "kernel must be nonempty".into(),
        });
    }
    let pad = cfg.resolve_padding(k_h.max(k_w));
    let h_padded = h_in + 2 * pad;
    let w_padded = w_in + 2 * pad;
    if h_padded < k_h || w_padded < k_w {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("kernel {k_h}x{k_w} larger than padded input {h_padded}x{w_padded}"),
        });
    }
    if let Some(b) = bias {
        if b.shape() != Shape::new(&[c_out]) {
            return Err(TensorError::ShapeMismatch {
                op: OP,
                lhs: b.shape(),
                rhs: Shape::new(&[c_out]),
            });
        }
    }
    let h_out = (h_padded - k_h) / cfg.stride + 1;
    let w_out = (w_padded - k_w) / cfg.stride + 1;
    Ok(ConvDims { batch, c_in, h_in, w_in, c_out, c_in_per_group, k_h, k_w, pad, h_out, w_out })
}

/// 2-D convolution over an NCHW input.
///
/// `input` is `[N, C_in, H, W]`, `weight` is
/// `[C_out, C_in/groups, K_h, K_w]`, `bias` (when present) is `[C_out]`.
/// The implementation dispatches to a specialised depthwise kernel when
/// `groups == C_in == C_out`, and to the `im2col` + blocked-GEMM path
/// otherwise.
///
/// # Errors
///
/// Returns an error when the operand ranks are not 4, the group count does
/// not divide the channel counts, the bias length differs from `C_out`, the
/// stride is zero, or the kernel exceeds the padded input.
///
/// # Example
///
/// ```
/// use sfi_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), sfi_tensor::TensorError> {
/// let input = Tensor::full([1, 1, 3, 3], 1.0);
/// let weight = Tensor::full([1, 1, 3, 3], 1.0);
/// let out = ops::conv2d(&input, &weight, None, ops::Conv2dCfg::same(1))?;
/// // centre pixel sees all nine ones
/// assert_eq!(out.get([0, 0, 1, 1]), Some(9.0));
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    conv2d_kernel(input, weight, bias, cfg, GemmKernel::Blocked)
}

/// [`conv2d`] with an explicit GEMM kernel choice.
///
/// Both kernels produce bit-identical results; `Naive` exists so the
/// pre-optimization path stays measurable (benches, ablation baselines).
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_kernel(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    kernel: GemmKernel,
) -> Result<Tensor, TensorError> {
    let dims = validate(input, weight, bias, cfg)?;
    if dims.is_depthwise(cfg) {
        Ok(depthwise(input, weight, bias, cfg, &dims))
    } else {
        Ok(im2col_conv(input, weight, bias, cfg, &dims, kernel, None))
    }
}

/// [`conv2d`] drawing its column, packing, and output buffers from `arena`
/// instead of the allocator — the campaign-worker hot path.
///
/// Bit-identical to [`conv2d`]; only buffer provenance differs.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    arena: &mut ScratchArena,
) -> Result<Tensor, TensorError> {
    let dims = validate(input, weight, bias, cfg)?;
    if dims.is_depthwise(cfg) {
        Ok(depthwise(input, weight, bias, cfg, &dims))
    } else {
        Ok(im2col_conv(input, weight, bias, cfg, &dims, GemmKernel::Blocked, Some(arena)))
    }
}

/// Reference direct (sextuple-loop) convolution.
///
/// Retained as the test oracle and the baseline of the `ablation_conv`
/// bench. Note that padded positions are *skipped* here while the `im2col`
/// path multiplies them as explicit zeros — numerically identical for
/// finite weights, but with NaN/Inf weights the paths legitimately differ
/// at padded border pixels (`0.0 * NaN` is NaN).
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    let d = validate(input, weight, bias, cfg)?;
    let mut out = Tensor::zeros([d.batch, d.c_out, d.h_out, d.w_out]);
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let out_data = out.as_mut_slice();
    let c_out_per_group = d.c_out / cfg.groups;
    for n in 0..d.batch {
        for co in 0..d.c_out {
            let g = co / c_out_per_group;
            let base = bias.map_or(0.0, |b| b.as_slice()[co]);
            for oh in 0..d.h_out {
                for ow in 0..d.w_out {
                    let mut acc = 0.0f32;
                    for ci_g in 0..d.c_in_per_group {
                        let ci = g * d.c_in_per_group + ci_g;
                        for kh in 0..d.k_h {
                            let ih = (oh * cfg.stride + kh) as isize - d.pad as isize;
                            if ih < 0 || ih as usize >= d.h_in {
                                continue;
                            }
                            for kw in 0..d.k_w {
                                let iw = (ow * cfg.stride + kw) as isize - d.pad as isize;
                                if iw < 0 || iw as usize >= d.w_in {
                                    continue;
                                }
                                let in_idx = ((n * d.c_in + ci) * d.h_in + ih as usize) * d.w_in
                                    + iw as usize;
                                let w_idx =
                                    ((co * d.c_in_per_group + ci_g) * d.k_h + kh) * d.k_w + kw;
                                acc += in_data[in_idx] * w_data[w_idx];
                            }
                        }
                    }
                    let out_idx = ((n * d.c_out + co) * d.h_out + oh) * d.w_out + ow;
                    out_data[out_idx] = acc + base;
                }
            }
        }
    }
    Ok(out)
}

/// `im2col` + naive-GEMM convolution, exposed for the conv-strategy
/// ablation bench (the historical kernel, before blocking).
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
) -> Result<Tensor, TensorError> {
    let dims = validate(input, weight, bias, cfg)?;
    Ok(im2col_conv(input, weight, bias, cfg, &dims, GemmKernel::Naive, None))
}

/// Whether [`conv2d`] would route `(input, weight, cfg)` through the
/// `im2col` + GEMM path — i.e. whether an [`im2col_lower`] of this input is
/// ever consumed. Depthwise-dispatched and invalid configurations return
/// `false`.
pub fn conv2d_uses_lowering(input: &Tensor, weight: &Tensor, cfg: Conv2dCfg) -> bool {
    match validate(input, weight, None, cfg) {
        Ok(d) => !d.is_depthwise(cfg),
        Err(_) => false,
    }
}

/// The im2col column panels of one convolution input, precomputed by
/// [`im2col_lower`] and consumed by [`conv2d_from_lowered`].
///
/// Fault campaigns cache one of these per `(conv node, eval image)`: every
/// fault in a stratum perturbs the same layer, and incremental re-execution
/// feeds that layer its *golden* input, so the column matrix is byte-
/// identical across all of the stratum's faults and need only be lowered
/// once.
#[derive(Debug, Clone)]
pub struct LoweredConv {
    /// `[batch][group]` panels of `k_len * spatial` elements each.
    cols: Vec<f32>,
    batch: usize,
    groups: usize,
    c_out: usize,
    c_in_per_group: usize,
    k_h: usize,
    k_w: usize,
    k_len: usize,
    spatial: usize,
    h_out: usize,
    w_out: usize,
}

impl LoweredConv {
    /// Heap footprint of the cached panels, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.cols.len() * std::mem::size_of::<f32>()
    }

    fn panel(&self, n: usize, g: usize) -> &[f32] {
        let len = self.k_len * self.spatial;
        &self.cols[(n * self.groups + g) * len..][..len]
    }
}

/// Precomputes the im2col column panels of `input` for the convolution
/// described by `(weight, cfg)`.
///
/// The panels depend only on the *input* values and the geometry — not on
/// the weight values — so they stay valid under any weight fault.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn im2col_lower(
    input: &Tensor,
    weight: &Tensor,
    cfg: Conv2dCfg,
) -> Result<LoweredConv, TensorError> {
    let d = validate(input, weight, None, cfg)?;
    let spatial = d.h_out * d.w_out;
    let k_len = d.c_in_per_group * d.k_h * d.k_w;
    let panel = k_len * spatial;
    let mut cols = vec![0.0f32; d.batch * cfg.groups * panel];
    let in_data = input.as_slice();
    for n in 0..d.batch {
        for g in 0..cfg.groups {
            lower_group_fast(
                in_data,
                cfg,
                &d,
                n,
                g,
                &mut cols[(n * cfg.groups + g) * panel..][..panel],
            );
        }
    }
    Ok(LoweredConv {
        cols,
        batch: d.batch,
        groups: cfg.groups,
        c_out: d.c_out,
        c_in_per_group: d.c_in_per_group,
        k_h: d.k_h,
        k_w: d.k_w,
        k_len,
        spatial,
        h_out: d.h_out,
        w_out: d.w_out,
    })
}

/// Convolution over pre-lowered column panels: skips the lowering pass and
/// goes straight to the blocked GEMM. Bit-identical to [`conv2d`] on the
/// input `lowered` was built from.
///
/// # Errors
///
/// Returns [`TensorError::InvalidConfig`] when `weight`'s shape does not
/// match the geometry the panels were lowered for, or a shape error for a
/// mismatched bias.
pub fn conv2d_from_lowered(
    lowered: &LoweredConv,
    weight: &Tensor,
    bias: Option<&Tensor>,
    mut arena: Option<&mut ScratchArena>,
) -> Result<Tensor, TensorError> {
    const OP: &str = "conv2d_from_lowered";
    validate_lowered(OP, lowered, weight, bias)?;
    let (k_len, spatial) = (lowered.k_len, lowered.spatial);
    let c_out_per_group = lowered.c_out / lowered.groups;
    let out_len = lowered.batch * lowered.c_out * spatial;
    let mut out_data = match arena.as_deref_mut() {
        Some(a) => a.take_zeroed(out_len),
        None => vec![0.0f32; out_len],
    };
    let mut packed = match arena.as_deref_mut() {
        Some(a) => a.take(0),
        None => Vec::new(),
    };
    let w_data = weight.as_slice();
    for n in 0..lowered.batch {
        for g in 0..lowered.groups {
            let w_group = &w_data[g * c_out_per_group * k_len..][..c_out_per_group * k_len];
            let out_group = &mut out_data[(n * lowered.c_out + g * c_out_per_group) * spatial..]
                [..c_out_per_group * spatial];
            gemm_blocked_with(
                c_out_per_group,
                k_len,
                spatial,
                w_group,
                lowered.panel(n, g),
                out_group,
                &mut packed,
            );
        }
        if let Some(b) = bias {
            add_bias(&mut out_data, b, n, lowered.c_out, spatial);
        }
    }
    if let Some(a) = arena {
        a.recycle(packed);
    }
    Ok(Tensor::from_vec([lowered.batch, lowered.c_out, lowered.h_out, lowered.w_out], out_data)
        .expect("output length follows from lowered dims"))
}

/// Weight/bias validation shared by the from-lowered entry points.
fn validate_lowered(
    op: &'static str,
    lowered: &LoweredConv,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<(), TensorError> {
    let ws = weight.shape();
    if ws.rank() != 4 {
        return Err(TensorError::RankMismatch { op, expected: 4, actual: ws.rank() });
    }
    if ws.n() != lowered.c_out
        || ws.c() != lowered.c_in_per_group
        || ws.h() != lowered.k_h
        || ws.w() != lowered.k_w
    {
        return Err(TensorError::InvalidConfig {
            op,
            reason: format!(
                "weight {ws} does not match panels lowered for [{}, {}, {}, {}]",
                lowered.c_out, lowered.c_in_per_group, lowered.k_h, lowered.k_w
            ),
        });
    }
    if let Some(b) = bias {
        if b.shape() != Shape::new(&[lowered.c_out]) {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: b.shape(),
                rhs: Shape::new(&[lowered.c_out]),
            });
        }
    }
    Ok(())
}

/// One output channel of [`conv2d_from_lowered`], bit-identically: the
/// single GEMM row `channel` over each image's panel plus that channel's
/// bias term. Returns `batch * spatial` values laid out `[batch][spatial]`
/// (drawn from `arena` when one is supplied — recycle the buffer when
/// done).
///
/// This is the kernel behind the campaign's *single-channel convergence
/// probe*: a weight fault in a conv layer can only reach output channel
/// `weight_index / (c_in_per_group * k_h * k_w)`; every other channel is a
/// deterministic recomputation from golden inputs and golden weight rows,
/// so probing the one reachable channel decides whole-node convergence at
/// `~1/c_out` of the node's GEMM cost. Bit identity with the full kernel
/// holds because every GEMM kernel accumulates each output element one
/// partial product at a time in increasing-`k` order (see
/// [`gemm_blocked`](super::gemm_blocked)), so a lone row carries exactly
/// the bits the full multiply would give it.
///
/// # Errors
///
/// Same conditions as [`conv2d_from_lowered`], plus
/// [`TensorError::InvalidConfig`] when `channel` is out of range.
pub fn conv2d_channel_from_lowered(
    lowered: &LoweredConv,
    weight: &Tensor,
    bias: Option<&Tensor>,
    channel: usize,
    arena: Option<&mut ScratchArena>,
) -> Result<Vec<f32>, TensorError> {
    const OP: &str = "conv2d_channel_from_lowered";
    validate_lowered(OP, lowered, weight, bias)?;
    if channel >= lowered.c_out {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("channel {channel} out of range for {} output channels", lowered.c_out),
        });
    }
    let (k_len, spatial) = (lowered.k_len, lowered.spatial);
    let c_out_per_group = lowered.c_out / lowered.groups;
    let g = channel / c_out_per_group;
    let w_row = &weight.as_slice()[channel * k_len..][..k_len];
    let mut out = match arena {
        Some(a) => a.take_zeroed(lowered.batch * spatial),
        None => vec![0.0f32; lowered.batch * spatial],
    };
    for n in 0..lowered.batch {
        // gemm_row self-selects between the lane-tiled row microkernel and
        // the naive loop by panel footprint; both are bit-identical to
        // `gemm(1, ..)`.
        gemm_row(k_len, spatial, w_row, lowered.panel(n, g), &mut out[n * spatial..][..spatial]);
    }
    if let Some(b) = bias {
        let bv = b.as_slice()[channel];
        for v in out.iter_mut() {
            *v += bv;
        }
    }
    Ok(out)
}

/// The activation applied by a fused conv epilogue, after the optional
/// folded batch norm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusedActivation {
    /// No activation.
    #[default]
    None,
    /// `max(x, 0)` with the exact compare-and-select of [`super::relu`].
    Relu,
    /// `clamp(x, 0, 6)` with the exact semantics of [`super::relu6`].
    Relu6,
}

/// Element-wise tail fused into the batched conv scatter: an optional
/// folded batch norm (per-output-channel `scale`/`shift` from
/// [`super::bn_channel_scale_shift`]) followed by an optional activation.
///
/// Applying the epilogue during the GEMM-output scatter produces exactly
/// the bits of running the unfused `conv → batch_norm → relu` chain: the
/// per-element operation sequence (`+ bias`, `* scale + shift`,
/// compare-and-select) is identical — only the intermediate buffers
/// disappear.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvEpilogue<'a> {
    /// Folded batch-norm coefficients, per output channel.
    pub bn: Option<(&'a [f32], &'a [f32])>,
    /// Fused activation, applied last.
    pub act: FusedActivation,
}

impl ConvEpilogue<'_> {
    #[inline]
    fn apply(&self, channel: usize, v: f32) -> f32 {
        let mut v = v;
        if let Some((scale, shift)) = self.bn {
            v = v * scale[channel] + shift[channel];
        }
        match self.act {
            FusedActivation::None => v,
            FusedActivation::Relu => {
                if v < 0.0 {
                    0.0
                } else {
                    v
                }
            }
            FusedActivation::Relu6 => v.clamp(0.0, 6.0),
        }
    }
}

/// The image-interleaved im2col panels of one convolution input batch,
/// shaped for the batched eval-image forward: per group, one
/// `k_len x (batch * spatial)` panel whose columns are image-major
/// (`column = image * spatial + pixel`), so the whole batch costs **one
/// GEMM per group** instead of one per image.
///
/// Per output element the GEMM accumulation is indistinguishable from the
/// per-image [`LoweredConv`] path — batching concatenates independent
/// columns, never touching any element's `k`-order accumulation chain — so
/// batched and per-image convolution are bit-identical.
#[derive(Debug, Clone)]
pub struct BatchedLowered {
    /// `[group]` panels of `k_len * batch * spatial` elements each.
    cols: Vec<f32>,
    batch: usize,
    groups: usize,
    c_out: usize,
    c_in_per_group: usize,
    k_h: usize,
    k_w: usize,
    k_len: usize,
    spatial: usize,
    h_out: usize,
    w_out: usize,
}

impl BatchedLowered {
    /// Heap footprint of the panels, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.cols.len() * std::mem::size_of::<f32>()
    }

    /// Number of images interleaved in each panel.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn panel(&self, g: usize) -> &[f32] {
        let len = self.k_len * self.batch * self.spatial;
        &self.cols[g * len..][..len]
    }

    /// Consumes the panels, returning the backing buffer for arena
    /// recycling.
    pub fn into_cols(self) -> Vec<f32> {
        self.cols
    }
}

/// Lowers a (multi-image) input batch directly into the image-interleaved
/// panels of [`BatchedLowered`], drawing the buffer from `arena` when one
/// is supplied. The per-(row, image) bytes written are exactly those of
/// [`im2col_lower`] — only their placement differs.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn im2col_lower_batched(
    input: &Tensor,
    weight: &Tensor,
    cfg: Conv2dCfg,
    arena: Option<&mut ScratchArena>,
) -> Result<BatchedLowered, TensorError> {
    let d = validate(input, weight, None, cfg)?;
    let spatial = d.h_out * d.w_out;
    let k_len = d.c_in_per_group * d.k_h * d.k_w;
    let row_stride = d.batch * spatial;
    let panel = k_len * row_stride;
    let mut cols = match arena {
        Some(a) => a.take(cfg.groups * panel),
        None => vec![0.0f32; cfg.groups * panel],
    };
    let in_data = input.as_slice();
    for g in 0..cfg.groups {
        let dst = &mut cols[g * panel..][..panel];
        for n in 0..d.batch {
            lower_group_fast_strided(in_data, cfg, &d, n, g, dst, row_stride, n * spatial);
        }
    }
    Ok(BatchedLowered {
        cols,
        batch: d.batch,
        groups: cfg.groups,
        c_out: d.c_out,
        c_in_per_group: d.c_in_per_group,
        k_h: d.k_h,
        k_w: d.k_w,
        k_len,
        spatial,
        h_out: d.h_out,
        w_out: d.w_out,
    })
}

/// Weight/bias validation for the batched panels (mirrors
/// [`validate_lowered`]).
fn validate_batched(
    op: &'static str,
    lowered: &BatchedLowered,
    weight: &Tensor,
    bias: Option<&Tensor>,
) -> Result<(), TensorError> {
    let ws = weight.shape();
    if ws.rank() != 4 {
        return Err(TensorError::RankMismatch { op, expected: 4, actual: ws.rank() });
    }
    if ws.n() != lowered.c_out
        || ws.c() != lowered.c_in_per_group
        || ws.h() != lowered.k_h
        || ws.w() != lowered.k_w
    {
        return Err(TensorError::InvalidConfig {
            op,
            reason: format!(
                "weight {ws} does not match panels lowered for [{}, {}, {}, {}]",
                lowered.c_out, lowered.c_in_per_group, lowered.k_h, lowered.k_w
            ),
        });
    }
    if let Some(b) = bias {
        if b.shape() != Shape::new(&[lowered.c_out]) {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: b.shape(),
                rhs: Shape::new(&[lowered.c_out]),
            });
        }
    }
    Ok(())
}

/// Batched convolution over image-interleaved panels: one GEMM per group
/// covers every image, and the GEMM-output scatter back to NCHW applies
/// the bias and an optional fused epilogue (folded batch norm, ReLU) in
/// the same pass.
///
/// Bit-identical to running [`conv2d_from_lowered`] per image followed by
/// the unfused `batch_norm`/`relu` ops: each output element's `k`
/// accumulation order, bias add, affine fold, and clamp are the exact
/// per-element operation sequence of the unfused chain (see
/// [`ConvEpilogue`]).
///
/// # Errors
///
/// Same conditions as [`conv2d_from_lowered`].
pub fn conv2d_batched_from_lowered(
    lowered: &BatchedLowered,
    weight: &Tensor,
    bias: Option<&Tensor>,
    epilogue: Option<&ConvEpilogue<'_>>,
    mut arena: Option<&mut ScratchArena>,
) -> Result<Tensor, TensorError> {
    const OP: &str = "conv2d_batched_from_lowered";
    validate_batched(OP, lowered, weight, bias)?;
    if let Some(ep) = epilogue {
        if let Some((scale, shift)) = ep.bn {
            if scale.len() != lowered.c_out || shift.len() != lowered.c_out {
                return Err(TensorError::InvalidConfig {
                    op: OP,
                    reason: format!(
                        "epilogue coefficients ({}, {}) do not cover {} output channels",
                        scale.len(),
                        shift.len(),
                        lowered.c_out
                    ),
                });
            }
        }
    }
    let (k_len, spatial, batch) = (lowered.k_len, lowered.spatial, lowered.batch);
    let bspatial = batch * spatial;
    let c_out_per_group = lowered.c_out / lowered.groups;
    let mut gemm_out = match arena.as_deref_mut() {
        Some(a) => a.take_zeroed(c_out_per_group * bspatial),
        None => vec![0.0f32; c_out_per_group * bspatial],
    };
    let mut packed = match arena.as_deref_mut() {
        Some(a) => a.take(0),
        None => Vec::new(),
    };
    let mut out_data = match arena.as_deref_mut() {
        Some(a) => a.take(batch * lowered.c_out * spatial),
        None => vec![0.0f32; batch * lowered.c_out * spatial],
    };
    let w_data = weight.as_slice();
    let b_data = bias.map(Tensor::as_slice);
    let identity = ConvEpilogue::default();
    let ep = epilogue.unwrap_or(&identity);
    for g in 0..lowered.groups {
        let w_group = &w_data[g * c_out_per_group * k_len..][..c_out_per_group * k_len];
        if g > 0 {
            gemm_out.fill(0.0);
        }
        gemm_blocked_with(
            c_out_per_group,
            k_len,
            bspatial,
            w_group,
            lowered.panel(g),
            &mut gemm_out,
            &mut packed,
        );
        // Scatter [c][image * spatial] rows into NCHW, fusing bias + tail.
        for cg in 0..c_out_per_group {
            let co = g * c_out_per_group + cg;
            let src_row = &gemm_out[cg * bspatial..][..bspatial];
            for n in 0..batch {
                let src = &src_row[n * spatial..][..spatial];
                let dst = &mut out_data[(n * lowered.c_out + co) * spatial..][..spatial];
                match b_data {
                    Some(b) => {
                        let bv = b[co];
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = ep.apply(co, s + bv);
                        }
                    }
                    None => {
                        for (d, &s) in dst.iter_mut().zip(src) {
                            *d = ep.apply(co, s);
                        }
                    }
                }
            }
        }
    }
    if let Some(a) = arena {
        a.recycle(packed);
        a.recycle(gemm_out);
    }
    Ok(Tensor::from_vec([batch, lowered.c_out, lowered.h_out, lowered.w_out], out_data)
        .expect("output length follows from lowered dims"))
}

/// One output channel of the batched convolution, bit-identically: a
/// single GEMM row over the image-interleaved panel plus the channel's
/// bias term. Returns `batch * spatial` values laid out `[image][spatial]`
/// — the same layout as [`conv2d_channel_from_lowered`], so the two probe
/// kernels are interchangeable bit-for-bit.
///
/// # Errors
///
/// Same conditions as [`conv2d_channel_from_lowered`].
pub fn conv2d_channel_batched(
    lowered: &BatchedLowered,
    weight: &Tensor,
    bias: Option<&Tensor>,
    channel: usize,
    arena: Option<&mut ScratchArena>,
) -> Result<Vec<f32>, TensorError> {
    const OP: &str = "conv2d_channel_batched";
    validate_batched(OP, lowered, weight, bias)?;
    if channel >= lowered.c_out {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("channel {channel} out of range for {} output channels", lowered.c_out),
        });
    }
    let (k_len, bspatial) = (lowered.k_len, lowered.batch * lowered.spatial);
    let c_out_per_group = lowered.c_out / lowered.groups;
    let g = channel / c_out_per_group;
    let w_row = &weight.as_slice()[channel * k_len..][..k_len];
    let mut out = match arena {
        Some(a) => a.take_zeroed(bspatial),
        None => vec![0.0f32; bspatial],
    };
    gemm_row(k_len, bspatial, w_row, lowered.panel(g), &mut out);
    if let Some(b) = bias {
        let bv = b.as_slice()[channel];
        for v in out.iter_mut() {
            *v += bv;
        }
    }
    Ok(out)
}

/// Lowers image `n`, group `g` of `in_data` into `cols` (`k_len x spatial`,
/// row-major). Writes **every** element — padding positions become explicit
/// zeros — so dirty (recycled) buffers are safe destinations.
/// [`lower_group`] with the per-element border test hoisted out of the
/// inner loop — the fast-path lowering.
///
/// For stride-1 convolutions every destination row splits into a zero
/// left border, one contiguous slice copy from the input row, and a zero
/// right border, so the branchy per-pixel gather becomes `fill`s and a
/// `copy_from_slice`. Pure data movement: it writes exactly the same
/// column matrix as [`lower_group`] (bit-identical by construction — no
/// floating-point arithmetic is performed), so the GEMM consuming it
/// cannot tell the difference. Strides other than 1 fall back to the
/// scalar gather.
fn lower_group_fast(
    in_data: &[f32],
    cfg: Conv2dCfg,
    d: &ConvDims,
    n: usize,
    g: usize,
    cols: &mut [f32],
) {
    let spatial = d.h_out * d.w_out;
    lower_group_fast_strided(in_data, cfg, d, n, g, cols, spatial, 0);
}

/// [`lower_group_fast`] writing each column-matrix row at
/// `row * row_stride + row_offset` instead of densely at `row * spatial` —
/// the addressing hook that lets one lowering kernel serve both the
/// per-image panels (`row_stride == spatial`) and the image-interleaved
/// batched panels of [`im2col_lower_batched`] (`row_stride ==
/// batch * spatial`, `row_offset == n * spatial`). Pure data movement
/// either way: the bytes written per (row, image) are identical.
#[allow(clippy::too_many_arguments)]
fn lower_group_fast_strided(
    in_data: &[f32],
    cfg: Conv2dCfg,
    d: &ConvDims,
    n: usize,
    g: usize,
    cols: &mut [f32],
    row_stride: usize,
    row_offset: usize,
) {
    if cfg.stride != 1 {
        return lower_group_strided(in_data, cfg, d, n, g, cols, row_stride, row_offset);
    }
    let spatial = d.h_out * d.w_out;
    for ci_g in 0..d.c_in_per_group {
        let ci = g * d.c_in_per_group + ci_g;
        let in_chan = &in_data[(n * d.c_in + ci) * d.h_in * d.w_in..][..d.h_in * d.w_in];
        for kh in 0..d.k_h {
            for kw in 0..d.k_w {
                let row = (ci_g * d.k_h + kh) * d.k_w + kw;
                let dst = &mut cols[row * row_stride + row_offset..][..spatial];
                // iw = ow + w_shift; valid input columns are a contiguous
                // run of ow, bounded below by iw >= 0 and above by
                // iw < w_in.
                let w_shift = kw as isize - d.pad as isize;
                let ow_hi = ((d.w_in as isize - w_shift).max(0) as usize).min(d.w_out);
                let ow_lo = ((-w_shift).max(0) as usize).min(ow_hi);
                for oh in 0..d.h_out {
                    let ih = (oh + kh) as isize - d.pad as isize;
                    let dst_row = &mut dst[oh * d.w_out..(oh + 1) * d.w_out];
                    if ih < 0 || ih as usize >= d.h_in {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let in_row = &in_chan[ih as usize * d.w_in..][..d.w_in];
                    dst_row[..ow_lo].fill(0.0);
                    dst_row[ow_lo..ow_hi].copy_from_slice(
                        &in_row[(ow_lo as isize + w_shift) as usize
                            ..(ow_hi as isize + w_shift) as usize],
                    );
                    dst_row[ow_hi..].fill(0.0);
                }
            }
        }
    }
}

fn lower_group(
    in_data: &[f32],
    cfg: Conv2dCfg,
    d: &ConvDims,
    n: usize,
    g: usize,
    cols: &mut [f32],
) {
    let spatial = d.h_out * d.w_out;
    lower_group_strided(in_data, cfg, d, n, g, cols, spatial, 0);
}

/// [`lower_group`] with the strided row addressing of
/// [`lower_group_fast_strided`] — the scalar-gather fallback for strides
/// other than 1.
#[allow(clippy::too_many_arguments)]
fn lower_group_strided(
    in_data: &[f32],
    cfg: Conv2dCfg,
    d: &ConvDims,
    n: usize,
    g: usize,
    cols: &mut [f32],
    row_stride: usize,
    row_offset: usize,
) {
    let spatial = d.h_out * d.w_out;
    for ci_g in 0..d.c_in_per_group {
        let ci = g * d.c_in_per_group + ci_g;
        let in_chan = &in_data[(n * d.c_in + ci) * d.h_in * d.w_in..][..d.h_in * d.w_in];
        for kh in 0..d.k_h {
            for kw in 0..d.k_w {
                let row = (ci_g * d.k_h + kh) * d.k_w + kw;
                let dst = &mut cols[row * row_stride + row_offset..][..spatial];
                let mut idx = 0usize;
                for oh in 0..d.h_out {
                    let ih = (oh * cfg.stride + kh) as isize - d.pad as isize;
                    if ih < 0 || ih as usize >= d.h_in {
                        for _ in 0..d.w_out {
                            dst[idx] = 0.0;
                            idx += 1;
                        }
                        continue;
                    }
                    let in_row = &in_chan[ih as usize * d.w_in..][..d.w_in];
                    for ow in 0..d.w_out {
                        let iw = (ow * cfg.stride + kw) as isize - d.pad as isize;
                        dst[idx] =
                            if iw < 0 || iw as usize >= d.w_in { 0.0 } else { in_row[iw as usize] };
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Adds the per-channel bias to image `n` of `out_data`.
fn add_bias(out_data: &mut [f32], bias: &Tensor, n: usize, c_out: usize, spatial: usize) {
    let b_data = bias.as_slice();
    for co in 0..c_out {
        let dst = &mut out_data[(n * c_out + co) * spatial..][..spatial];
        for v in dst {
            *v += b_data[co];
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn im2col_conv(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    d: &ConvDims,
    kernel: GemmKernel,
    mut arena: Option<&mut ScratchArena>,
) -> Tensor {
    let spatial = d.h_out * d.w_out;
    let k_len = d.c_in_per_group * d.k_h * d.k_w;
    let c_out_per_group = d.c_out / cfg.groups;
    let out_len = d.batch * d.c_out * spatial;
    let mut out_data = match arena.as_deref_mut() {
        Some(a) => a.take_zeroed(out_len),
        None => vec![0.0f32; out_len],
    };
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    // Column buffer reused across images and groups; `lower_group` writes
    // every element, so a dirty recycled buffer is fine.
    let mut cols = match arena.as_deref_mut() {
        Some(a) => a.take(k_len * spatial),
        None => vec![0.0f32; k_len * spatial],
    };
    let mut packed = match arena.as_deref_mut() {
        Some(a) => a.take(0),
        None => Vec::new(),
    };
    for n in 0..d.batch {
        for g in 0..cfg.groups {
            // The Naive kernel keeps the historical scalar gather so the
            // pre-optimization cost model stays measurable; the fast path
            // lowers with slice copies. Both write the same column matrix.
            match kernel {
                GemmKernel::Naive => lower_group(in_data, cfg, d, n, g, &mut cols),
                GemmKernel::Blocked => lower_group_fast(in_data, cfg, d, n, g, &mut cols),
            }
            // GEMM: weights [c_out_per_group, k_len] x cols [k_len, spatial].
            let w_group = &w_data[g * c_out_per_group * k_len..][..c_out_per_group * k_len];
            let out_group = &mut out_data[(n * d.c_out + g * c_out_per_group) * spatial..]
                [..c_out_per_group * spatial];
            match kernel {
                GemmKernel::Naive => {
                    gemm(c_out_per_group, k_len, spatial, w_group, &cols, out_group)
                }
                GemmKernel::Blocked => gemm_blocked_with(
                    c_out_per_group,
                    k_len,
                    spatial,
                    w_group,
                    &cols,
                    out_group,
                    &mut packed,
                ),
            }
        }
        if let Some(b) = bias {
            add_bias(&mut out_data, b, n, d.c_out, spatial);
        }
    }
    if let Some(a) = arena {
        a.recycle(cols);
        a.recycle(packed);
    }
    Tensor::from_vec([d.batch, d.c_out, d.h_out, d.w_out], out_data)
        .expect("output length follows from conv dims")
}

fn depthwise(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    d: &ConvDims,
) -> Tensor {
    let mut out = Tensor::zeros([d.batch, d.c_out, d.h_out, d.w_out]);
    let in_data = input.as_slice();
    let w_data = weight.as_slice();
    let out_data = out.as_mut_slice();
    for n in 0..d.batch {
        for c in 0..d.c_in {
            let in_chan = &in_data[(n * d.c_in + c) * d.h_in * d.w_in..][..d.h_in * d.w_in];
            let w_chan = &w_data[c * d.k_h * d.k_w..][..d.k_h * d.k_w];
            let base = bias.map_or(0.0, |b| b.as_slice()[c]);
            let out_chan =
                &mut out_data[(n * d.c_out + c) * d.h_out * d.w_out..][..d.h_out * d.w_out];
            for oh in 0..d.h_out {
                for ow in 0..d.w_out {
                    let mut acc = 0.0f32;
                    for kh in 0..d.k_h {
                        let ih = (oh * cfg.stride + kh) as isize - d.pad as isize;
                        if ih < 0 || ih as usize >= d.h_in {
                            continue;
                        }
                        for kw in 0..d.k_w {
                            let iw = (ow * cfg.stride + kw) as isize - d.pad as isize;
                            if iw < 0 || iw as usize >= d.w_in {
                                continue;
                            }
                            acc += in_chan[ih as usize * d.w_in + iw as usize]
                                * w_chan[kh * d.k_w + kw];
                        }
                    }
                    out_chan[oh * d.w_out + ow] = acc + base;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: [usize; 4]) -> Tensor {
        Tensor::from_fn(shape, |i| (i % 13) as f32 * 0.25 - 1.0)
    }

    #[test]
    fn same_padding_preserves_size() {
        let input = Tensor::zeros([2, 3, 8, 8]);
        let weight = Tensor::zeros([5, 3, 3, 3]);
        let out = conv2d(&input, &weight, None, Conv2dCfg::same(1)).unwrap();
        assert_eq!(out.shape().dims(), &[2, 5, 8, 8]);
    }

    #[test]
    fn stride_two_halves_size() {
        let input = Tensor::zeros([1, 3, 8, 8]);
        let weight = Tensor::zeros([4, 3, 3, 3]);
        let out = conv2d(&input, &weight, None, Conv2dCfg::same(2)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn one_by_one_kernel_is_channel_mix() {
        let input = Tensor::from_vec([1, 2, 1, 1], vec![3.0, 5.0]).unwrap();
        let weight = Tensor::from_vec([1, 2, 1, 1], vec![2.0, -1.0]).unwrap();
        let out = conv2d(&input, &weight, None, Conv2dCfg::valid(1)).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), Some(1.0));
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let input = Tensor::zeros([1, 1, 2, 2]);
        let weight = Tensor::zeros([3, 1, 1, 1]);
        let bias = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), Conv2dCfg::valid(1)).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), Some(1.0));
        assert_eq!(out.get([0, 1, 1, 1]), Some(2.0));
        assert_eq!(out.get([0, 2, 0, 1]), Some(3.0));
    }

    #[test]
    fn im2col_matches_direct_grouped() {
        let input = seq_tensor([2, 4, 7, 7]);
        let weight = seq_tensor([6, 2, 3, 3]); // groups = 2
        let bias = Tensor::from_fn([6], |i| i as f32 * 0.1);
        let cfg = Conv2dCfg::same(2).with_groups(2);
        let a = conv2d_direct(&input, &weight, Some(&bias), cfg).unwrap();
        let b = conv2d_im2col(&input, &weight, Some(&bias), cfg).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4, "paths diverge");
    }

    #[test]
    fn depthwise_matches_direct() {
        let input = seq_tensor([1, 5, 6, 6]);
        let weight = seq_tensor([5, 1, 3, 3]);
        let cfg = Conv2dCfg::same(1).with_groups(5);
        let a = conv2d_direct(&input, &weight, None, cfg).unwrap();
        let b = conv2d(&input, &weight, None, cfg).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shapes");
        let same = a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{what}: values diverge");
    }

    #[test]
    fn kernel_choice_is_bit_identical() {
        let input = seq_tensor([2, 4, 9, 9]);
        let weight = seq_tensor([6, 2, 3, 3]);
        let bias = Tensor::from_fn([6], |i| i as f32 * 0.1 - 0.2);
        let cfg = Conv2dCfg::same(2).with_groups(2);
        let naive = conv2d_kernel(&input, &weight, Some(&bias), cfg, GemmKernel::Naive).unwrap();
        let blocked =
            conv2d_kernel(&input, &weight, Some(&bias), cfg, GemmKernel::Blocked).unwrap();
        assert_bits_equal(&naive, &blocked, "naive vs blocked");
    }

    #[test]
    fn arena_path_is_bit_identical_and_recycles() {
        let input = seq_tensor([1, 3, 8, 8]);
        let weight = seq_tensor([4, 3, 3, 3]);
        let cfg = Conv2dCfg::same(1);
        let plain = conv2d(&input, &weight, None, cfg).unwrap();
        let mut arena = ScratchArena::new();
        let a = conv2d_with(&input, &weight, None, cfg, &mut arena).unwrap();
        assert_bits_equal(&plain, &a, "arena first call");
        let parked = arena.free_buffers();
        assert!(parked >= 1, "cols buffer must be recycled");
        // A second call reuses the parked buffers and stays identical even
        // though they now hold stale contents.
        let b = conv2d_with(&input, &weight, None, cfg, &mut arena).unwrap();
        assert_bits_equal(&plain, &b, "arena second call");
        assert!(arena.peak_bytes() > 0);
    }

    #[test]
    fn lowered_path_is_bit_identical() {
        let input = seq_tensor([2, 4, 7, 7]);
        let weight = seq_tensor([6, 2, 3, 3]);
        let bias = Tensor::from_fn([6], |i| i as f32 * 0.1);
        let cfg = Conv2dCfg::same(2).with_groups(2);
        assert!(conv2d_uses_lowering(&input, &weight, cfg));
        let plain = conv2d(&input, &weight, Some(&bias), cfg).unwrap();
        let lowered = im2col_lower(&input, &weight, cfg).unwrap();
        assert_eq!(lowered.memory_bytes() % 4, 0);
        let from_cols = conv2d_from_lowered(&lowered, &weight, Some(&bias), None).unwrap();
        assert_bits_equal(&plain, &from_cols, "lowered, no arena");
        let mut arena = ScratchArena::new();
        let with_arena =
            conv2d_from_lowered(&lowered, &weight, Some(&bias), Some(&mut arena)).unwrap();
        assert_bits_equal(&plain, &with_arena, "lowered, arena");
    }

    #[test]
    fn channel_from_lowered_matches_full_kernel() {
        // Every channel of the single-row kernel must carry exactly the
        // bits the full from-lowered conv gives it — grouped geometry,
        // bias, and a NaN/Inf-corrupted weight row included.
        let input = seq_tensor([2, 4, 7, 7]);
        let mut weight = seq_tensor([6, 2, 3, 3]); // groups = 2
        weight.as_mut_slice()[3] = f32::NAN;
        weight.as_mut_slice()[20] = f32::INFINITY;
        let bias = Tensor::from_fn([6], |i| i as f32 * 0.1);
        let cfg = Conv2dCfg::same(2).with_groups(2);
        let lowered = im2col_lower(&input, &weight, cfg).unwrap();
        let full = conv2d_from_lowered(&lowered, &weight, Some(&bias), None).unwrap();
        let shape = full.shape();
        let dims = shape.dims();
        let (batch, c_out) = (dims[0], dims[1]);
        let spatial = dims[2] * dims[3];
        let mut arena = ScratchArena::new();
        for channel in 0..c_out {
            let row = conv2d_channel_from_lowered(
                &lowered,
                &weight,
                Some(&bias),
                channel,
                Some(&mut arena),
            )
            .unwrap();
            assert_eq!(row.len(), batch * spatial);
            for n in 0..batch {
                let got = &row[n * spatial..][..spatial];
                let want = &full.as_slice()[(n * c_out + channel) * spatial..][..spatial];
                let same = got.iter().zip(want).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "channel {channel}, image {n} diverges from the full kernel");
            }
            arena.recycle(row);
        }
        assert!(
            conv2d_channel_from_lowered(&lowered, &weight, None, c_out, None).is_err(),
            "out-of-range channel must be rejected"
        );
    }

    #[test]
    fn lowered_panels_survive_weight_faults() {
        // The panels depend only on the input: reusing them with a corrupted
        // weight must equal re-running conv2d with that weight.
        let input = seq_tensor([1, 3, 6, 6]);
        let mut weight = seq_tensor([4, 3, 3, 3]);
        let cfg = Conv2dCfg::same(1);
        let lowered = im2col_lower(&input, &weight, cfg).unwrap();
        weight.as_mut_slice()[7] = f32::NAN;
        weight.as_mut_slice()[20] = f32::INFINITY;
        let plain = conv2d(&input, &weight, None, cfg).unwrap();
        let from_cols = conv2d_from_lowered(&lowered, &weight, None, None).unwrap();
        assert_bits_equal(&plain, &from_cols, "faulted weight");
    }

    #[test]
    fn depthwise_shapes_never_lower() {
        let input = seq_tensor([1, 5, 6, 6]);
        let weight = seq_tensor([5, 1, 3, 3]);
        let cfg = Conv2dCfg::same(1).with_groups(5);
        assert!(!conv2d_uses_lowering(&input, &weight, cfg));
        // Invalid shapes do not lower either.
        assert!(!conv2d_uses_lowering(&Tensor::zeros([2, 2]), &weight, cfg));
    }

    #[test]
    fn from_lowered_rejects_mismatched_weight() {
        let input = seq_tensor([1, 3, 6, 6]);
        let weight = seq_tensor([4, 3, 3, 3]);
        let lowered = im2col_lower(&input, &weight, Conv2dCfg::same(1)).unwrap();
        let wrong = seq_tensor([4, 3, 5, 5]);
        assert!(matches!(
            conv2d_from_lowered(&lowered, &wrong, None, None),
            Err(TensorError::InvalidConfig { .. })
        ));
        let bad_bias = Tensor::zeros([7]);
        assert!(conv2d_from_lowered(&lowered, &weight, Some(&bad_bias), None).is_err());
    }

    #[test]
    fn rejects_wrong_rank() {
        let bad = Tensor::zeros([3, 3]);
        let weight = Tensor::zeros([1, 1, 3, 3]);
        assert!(matches!(
            conv2d(&bad, &weight, None, Conv2dCfg::same(1)),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_groups() {
        let input = Tensor::zeros([1, 3, 4, 4]);
        let weight = Tensor::zeros([4, 3, 3, 3]);
        let cfg = Conv2dCfg::same(1).with_groups(2);
        assert!(matches!(
            conv2d(&input, &weight, None, cfg),
            Err(TensorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn rejects_zero_stride() {
        let input = Tensor::zeros([1, 1, 4, 4]);
        let weight = Tensor::zeros([1, 1, 3, 3]);
        let cfg = Conv2dCfg { stride: 0, padding: Padding::Same, groups: 1 };
        assert!(conv2d(&input, &weight, None, cfg).is_err());
    }

    #[test]
    fn rejects_bias_of_wrong_length() {
        let input = Tensor::zeros([1, 1, 4, 4]);
        let weight = Tensor::zeros([2, 1, 3, 3]);
        let bias = Tensor::zeros([3]);
        assert!(conv2d(&input, &weight, Some(&bias), Conv2dCfg::same(1)).is_err());
    }

    #[test]
    fn rejects_channel_mismatch() {
        let input = Tensor::zeros([1, 3, 4, 4]);
        let weight = Tensor::zeros([2, 4, 3, 3]);
        assert!(conv2d(&input, &weight, None, Conv2dCfg::same(1)).is_err());
    }

    #[test]
    fn kernel_larger_than_input_rejected_without_padding() {
        let input = Tensor::zeros([1, 1, 2, 2]);
        let weight = Tensor::zeros([1, 1, 5, 5]);
        assert!(conv2d(&input, &weight, None, Conv2dCfg::valid(1)).is_err());
    }

    #[test]
    fn nan_weight_propagates() {
        let input = Tensor::full([1, 1, 3, 3], 1.0);
        let mut weight = Tensor::full([1, 1, 3, 3], 1.0);
        weight.as_mut_slice()[4] = f32::NAN;
        let out = conv2d(&input, &weight, None, Conv2dCfg::same(1)).unwrap();
        assert!(out.get([0, 0, 1, 1]).unwrap().is_nan());
    }

    #[test]
    fn known_edge_values_with_same_padding() {
        // All-ones 3x3 kernel over all-ones input: corners see 4, edges 6.
        let input = Tensor::full([1, 1, 3, 3], 1.0);
        let weight = Tensor::full([1, 1, 3, 3], 1.0);
        let out = conv2d(&input, &weight, None, Conv2dCfg::same(1)).unwrap();
        assert_eq!(out.get([0, 0, 0, 0]), Some(4.0));
        assert_eq!(out.get([0, 0, 0, 1]), Some(6.0));
        assert_eq!(out.get([0, 0, 1, 1]), Some(9.0));
    }
}
