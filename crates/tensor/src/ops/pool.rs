use crate::{Tensor, TensorError};

/// Average pooling with a square window and matching stride.
///
/// The spatial dimensions must be divisible by `kernel`; CIFAR topologies
/// only ever pool evenly (e.g. the final 8×8 → 1×1 or 4×4 → 1×1 pools).
///
/// # Errors
///
/// Returns an error when the input is not rank 4, `kernel` is zero, or the
/// spatial size is not divisible by `kernel`.
pub fn avg_pool2d(input: &Tensor, kernel: usize) -> Result<Tensor, TensorError> {
    const OP: &str = "avg_pool2d";
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    if kernel == 0 {
        return Err(TensorError::InvalidConfig { op: OP, reason: "kernel must be nonzero".into() });
    }
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    if h % kernel != 0 || w % kernel != 0 {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("input {h}x{w} not divisible by kernel {kernel}"),
        });
    }
    let (h_out, w_out) = (h / kernel, w / kernel);
    let mut out = Tensor::zeros([n, c, h_out, w_out]);
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    let norm = 1.0 / (kernel * kernel) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let chan = &in_data[(ni * c + ci) * h * w..][..h * w];
            for oh in 0..h_out {
                for ow in 0..w_out {
                    let mut acc = 0.0f32;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            acc += chan[(oh * kernel + kh) * w + ow * kernel + kw];
                        }
                    }
                    out_data[((ni * c + ci) * h_out + oh) * w_out + ow] = acc * norm;
                }
            }
        }
    }
    Ok(out)
}

/// Max pooling with a square window and matching stride.
///
/// The spatial dimensions must be divisible by `kernel` (as for
/// [`avg_pool2d`]). NaN inputs are never selected unless a window is
/// entirely NaN, mirroring the NaN-aware argmax used for predictions.
///
/// # Errors
///
/// Returns an error when the input is not rank 4, `kernel` is zero, or the
/// spatial size is not divisible by `kernel`.
pub fn max_pool2d(input: &Tensor, kernel: usize) -> Result<Tensor, TensorError> {
    const OP: &str = "max_pool2d";
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    if kernel == 0 {
        return Err(TensorError::InvalidConfig { op: OP, reason: "kernel must be nonzero".into() });
    }
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    if h % kernel != 0 || w % kernel != 0 {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("input {h}x{w} not divisible by kernel {kernel}"),
        });
    }
    let (h_out, w_out) = (h / kernel, w / kernel);
    let mut out = Tensor::zeros([n, c, h_out, w_out]);
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let chan = &in_data[(ni * c + ci) * h * w..][..h * w];
            for oh in 0..h_out {
                for ow in 0..w_out {
                    let mut best = f32::NEG_INFINITY;
                    let mut seen = false;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            let v = chan[(oh * kernel + kh) * w + ow * kernel + kw];
                            if !v.is_nan() && (v > best || !seen) {
                                best = v;
                                seen = true;
                            }
                        }
                    }
                    out_data[((ni * c + ci) * h_out + oh) * w_out + ow] =
                        if seen { best } else { f32::NAN };
                }
            }
        }
    }
    Ok(out)
}

/// Global average pooling: collapses each `H × W` feature map to a scalar,
/// returning a rank-2 `[N, C]` tensor ready for a classifier head.
///
/// # Errors
///
/// Returns an error when the input is not rank 4 or has empty spatial
/// dimensions.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor, TensorError> {
    const OP: &str = "global_avg_pool";
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    if h == 0 || w == 0 {
        return Err(TensorError::Empty { op: OP });
    }
    let mut out = Tensor::zeros([n, c]);
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    let norm = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let chan = &in_data[(ni * c + ci) * h * w..][..h * w];
            out_data[ni * c + ci] = chan.iter().sum::<f32>() * norm;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_divides_evenly() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = avg_pool2d(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[2.5]);
    }

    #[test]
    fn avg_pool_kernel_one_is_identity() {
        let input = Tensor::from_fn([1, 2, 3, 3], |i| i as f32);
        let out = avg_pool2d(&input, 1).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn avg_pool_rejects_uneven_division() {
        let input = Tensor::zeros([1, 1, 5, 5]);
        assert!(avg_pool2d(&input, 2).is_err());
    }

    #[test]
    fn avg_pool_rejects_zero_kernel() {
        let input = Tensor::zeros([1, 1, 4, 4]);
        assert!(avg_pool2d(&input, 0).is_err());
    }

    #[test]
    fn max_pool_picks_window_maxima() {
        let input =
            Tensor::from_vec([1, 1, 2, 4], vec![1.0, 5.0, -1.0, 2.0, 3.0, 0.0, 7.0, -4.0]).unwrap();
        let out = max_pool2d(&input, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 1, 2]);
        assert_eq!(out.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn max_pool_skips_nan_unless_all_nan() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![f32::NAN, 2.0, 1.0, f32::NAN]).unwrap();
        assert_eq!(max_pool2d(&input, 2).unwrap().as_slice(), &[2.0]);
        let all_nan = Tensor::full([1, 1, 2, 2], f32::NAN);
        assert!(max_pool2d(&all_nan, 2).unwrap().as_slice()[0].is_nan());
    }

    #[test]
    fn max_pool_rejects_bad_geometry() {
        assert!(max_pool2d(&Tensor::zeros([1, 1, 5, 5]), 2).is_err());
        assert!(max_pool2d(&Tensor::zeros([1, 1, 4, 4]), 0).is_err());
        assert!(max_pool2d(&Tensor::zeros([4, 4]), 2).is_err());
    }

    #[test]
    fn max_pool_dominates_avg_pool() {
        let input = Tensor::from_fn([1, 2, 4, 4], |i| ((i * 13) % 29) as f32 - 10.0);
        let mx = max_pool2d(&input, 2).unwrap();
        let av = avg_pool2d(&input, 2).unwrap();
        for (m, a) in mx.iter().zip(av.iter()) {
            assert!(m >= a);
        }
    }

    #[test]
    fn global_avg_pool_matches_avg_pool_full_kernel() {
        let input = Tensor::from_fn([2, 3, 4, 4], |i| (i % 7) as f32);
        let g = global_avg_pool(&input).unwrap();
        let a = avg_pool2d(&input, 4).unwrap();
        for n in 0..2 {
            for c in 0..3 {
                let diff = (g.get([n, c]).unwrap() - a.get([n, c, 0, 0]).unwrap()).abs();
                assert!(diff < 1e-6);
            }
        }
    }

    #[test]
    fn global_avg_pool_returns_rank_two() {
        let input = Tensor::zeros([3, 5, 2, 2]);
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape().dims(), &[3, 5]);
    }

    #[test]
    fn global_avg_pool_rejects_empty_spatial() {
        let input = Tensor::zeros([1, 1, 0, 4]);
        assert!(global_avg_pool(&input).is_err());
    }
}
