use crate::{ScratchArena, Tensor, TensorError};

/// The ReLU kernel behind [`relu`].
fn relu_apply(data: &mut [f32]) {
    for v in data {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// The ReLU6 kernel behind [`relu6`].
fn relu6_apply(data: &mut [f32]) {
    // f32::clamp propagates NaN, matching the documented semantics.
    for v in data {
        *v = v.clamp(0.0, 6.0);
    }
}

/// Rectified linear unit: `max(x, 0)` element-wise.
///
/// NaN inputs are preserved (PyTorch semantics), so faults that poison an
/// activation are not silently masked by the non-linearity.
///
/// # Example
///
/// ```
/// use sfi_tensor::{ops, Tensor};
///
/// let t = Tensor::from_vec([3], vec![-1.0, 0.5, 2.0]).unwrap();
/// assert_eq!(ops::relu(&t).as_slice(), &[0.0, 0.5, 2.0]);
/// ```
pub fn relu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    relu_apply(out.as_mut_slice());
    out
}

/// [`relu`] drawing its output buffer from `arena` — the campaign hot path.
///
/// Fuses the copy and the clamp into one pass. Unlike the arithmetic ops
/// (GEMM, batch norm, add), ReLU performs no floating-point *arithmetic* —
/// only a compare-and-select — so every output bit pattern equals either
/// the input element or `0.0` regardless of how the loop is compiled.
/// Bit-identity with [`relu`] therefore holds by value, without needing a
/// shared compiled kernel (NaN and `-0.0` are preserved by both: the
/// `< 0.0` compare is false for either).
pub fn relu_with(input: &Tensor, arena: &mut ScratchArena) -> Tensor {
    let mut data = arena.take(input.len());
    for (d, &s) in data.iter_mut().zip(input.as_slice()) {
        *d = if s < 0.0 { 0.0 } else { s };
    }
    Tensor::from_vec(input.shape(), data).expect("same length as input")
}

/// ReLU clamped at 6: `min(max(x, 0), 6)`, as used by MobileNetV2.
///
/// NaN inputs are preserved.
pub fn relu6(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    relu6_apply(out.as_mut_slice());
    out
}

/// [`relu6`] drawing its output buffer from `arena`, fused into one pass.
/// Bit-identical to [`relu6`] by value — `clamp` is compare-and-select,
/// not arithmetic, so both variants yield the same bits per element (see
/// [`relu_with`]).
pub fn relu6_with(input: &Tensor, arena: &mut ScratchArena) -> Tensor {
    let mut data = arena.take(input.len());
    for (d, &s) in data.iter_mut().zip(input.as_slice()) {
        *d = s.clamp(0.0, 6.0);
    }
    Tensor::from_vec(input.shape(), data).expect("same length as input")
}

/// Numerically stable softmax over the last dimension of a rank-2 tensor
/// (`[batch, classes]`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for ranks other than 2 and
/// [`TensorError::Empty`] when the class dimension is zero.
pub fn softmax(input: &Tensor) -> Result<Tensor, TensorError> {
    const OP: &str = "softmax";
    if input.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 2,
            actual: input.shape().rank(),
        });
    }
    let classes = input.shape().dims()[1];
    if classes == 0 {
        return Err(TensorError::Empty { op: OP });
    }
    let batch = input.shape().dims()[0];
    let mut out = input.clone();
    let data = out.as_mut_slice();
    for b in 0..batch {
        let row = &mut data[b * classes..(b + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec([4], vec![-2.0, -0.0, 0.0, 3.0]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, -0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_preserves_nan() {
        let t = Tensor::from_vec([1], vec![f32::NAN]).unwrap();
        assert!(relu(&t).as_slice()[0].is_nan());
    }

    #[test]
    fn relu6_clamps_both_sides() {
        let t = Tensor::from_vec([3], vec![-1.0, 3.0, 10.0]).unwrap();
        assert_eq!(relu6(&t).as_slice(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn relu6_preserves_nan() {
        let t = Tensor::from_vec([1], vec![f32::NAN]).unwrap();
        assert!(relu6(&t).as_slice()[0].is_nan());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = softmax(&t).unwrap();
        for b in 0..2 {
            let sum: f32 = (0..3).map(|c| s.get([b, c]).unwrap()).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([1, 3], vec![101.0, 102.0, 103.0]).unwrap();
        let sa = softmax(&a).unwrap();
        let sb = softmax(&b).unwrap();
        assert!(sa.max_abs_diff(&sb).unwrap() < 1e-6);
    }

    #[test]
    fn softmax_survives_large_inputs() {
        let t = Tensor::from_vec([1, 2], vec![1e30, -1e30]).unwrap();
        let s = softmax(&t).unwrap();
        assert!((s.get([0, 0]).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rejects_wrong_rank() {
        let t = Tensor::zeros([2, 2, 2]);
        assert!(softmax(&t).is_err());
    }
}
