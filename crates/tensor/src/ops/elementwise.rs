use crate::{ScratchArena, Tensor, TensorError};

/// The shared addition kernel: `dst[i] += rhs[i]` over a copy of the left
/// operand, used by both [`add`] and [`add_with`] so they stay bit-identical
/// by construction.
fn add_apply(dst: &mut [f32], rhs: &[f32]) {
    for (d, &r) in dst.iter_mut().zip(rhs) {
        *d += r;
    }
}

/// Element-wise addition of two tensors of identical shape (residual sum).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
///
/// # Example
///
/// ```
/// use sfi_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), sfi_tensor::TensorError> {
/// let a = Tensor::full([2, 2], 1.0);
/// let b = Tensor::full([2, 2], 2.0);
/// assert_eq!(ops::add(&a, &b)?.as_slice(), &[3.0; 4]);
/// # Ok(())
/// # }
/// ```
pub fn add(lhs: &Tensor, rhs: &Tensor) -> Result<Tensor, TensorError> {
    if lhs.shape() != rhs.shape() {
        return Err(TensorError::ShapeMismatch { op: "add", lhs: lhs.shape(), rhs: rhs.shape() });
    }
    let mut data = lhs.as_slice().to_vec();
    add_apply(&mut data, rhs.as_slice());
    Tensor::from_vec(lhs.shape(), data)
}

/// [`add`] drawing its output buffer from `arena` — the campaign hot path.
/// Bit-identical to [`add`]; only the buffer provenance differs.
///
/// # Errors
///
/// Same conditions as [`add`].
pub fn add_with(
    lhs: &Tensor,
    rhs: &Tensor,
    arena: &mut ScratchArena,
) -> Result<Tensor, TensorError> {
    if lhs.shape() != rhs.shape() {
        return Err(TensorError::ShapeMismatch { op: "add", lhs: lhs.shape(), rhs: rhs.shape() });
    }
    let mut data = arena.take(lhs.len());
    data.copy_from_slice(lhs.as_slice());
    add_apply(&mut data, rhs.as_slice());
    Tensor::from_vec(lhs.shape(), data)
}

/// ResNet "option A" identity shortcut for a stride-2 stage transition.
///
/// Spatially subsamples the input by `stride` and zero-pads the channel
/// dimension up to `out_channels`. This is the parameter-free downsample
/// path used by CIFAR ResNets (He et al. 2016), which is why the per-layer
/// fault population of ResNet-20 contains no shortcut weights.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs, zero stride, or when
/// `out_channels` is smaller than the input channel count.
pub fn downsample_pad_channels(
    input: &Tensor,
    out_channels: usize,
    stride: usize,
) -> Result<Tensor, TensorError> {
    const OP: &str = "downsample_pad_channels";
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    if stride == 0 {
        return Err(TensorError::InvalidConfig { op: OP, reason: "stride must be nonzero".into() });
    }
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    if out_channels < c {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("cannot shrink channels from {c} to {out_channels}"),
        });
    }
    let h_out = h.div_ceil(stride);
    let w_out = w.div_ceil(stride);
    let mut out = Tensor::zeros([n, out_channels, h_out, w_out]);
    let in_data = input.as_slice();
    let out_data = out.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            for oh in 0..h_out {
                for ow in 0..w_out {
                    let src = ((ni * c + ci) * h + oh * stride) * w + ow * stride;
                    let dst = ((ni * out_channels + ci) * h_out + oh) * w_out + ow;
                    out_data[dst] = in_data[src];
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_rejects_mismatched_shapes() {
        let a = Tensor::zeros([2, 2]);
        let b = Tensor::zeros([4]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn add_is_elementwise() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(add(&a, &b).unwrap().as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn downsample_subsamples_and_pads() {
        let input = Tensor::from_fn([1, 2, 4, 4], |i| i as f32);
        let out = downsample_pad_channels(&input, 4, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 4, 2, 2]);
        // channel 0, position (0,0) comes from input (0,0)
        assert_eq!(out.get([0, 0, 0, 0]), input.get([0, 0, 0, 0]));
        // channel 0, position (1,1) comes from input (2,2)
        assert_eq!(out.get([0, 0, 1, 1]), input.get([0, 0, 2, 2]));
        // padded channels are zero
        assert_eq!(out.get([0, 2, 0, 0]), Some(0.0));
        assert_eq!(out.get([0, 3, 1, 1]), Some(0.0));
    }

    #[test]
    fn downsample_identity_when_stride_one_same_channels() {
        let input = Tensor::from_fn([1, 3, 2, 2], |i| i as f32);
        let out = downsample_pad_channels(&input, 3, 1).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn downsample_odd_size_rounds_up() {
        let input = Tensor::zeros([1, 1, 5, 5]);
        let out = downsample_pad_channels(&input, 1, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 3, 3]);
    }

    #[test]
    fn downsample_rejects_channel_shrink() {
        let input = Tensor::zeros([1, 4, 2, 2]);
        assert!(downsample_pad_channels(&input, 2, 1).is_err());
    }
}
