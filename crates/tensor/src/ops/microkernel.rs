//! Bit-exact register-tiled GEMM microkernels.
//!
//! Every kernel in this module vectorizes **across output columns** (and,
//! for the packed tile kernel, across independent output rows): each output
//! element owns one accumulator lane, and that lane receives its `k`
//! partial products one at a time in increasing-`ki` order — exactly the
//! accumulation order of the naive [`gemm`](super::gemm) triple loop. SIMD
//! width therefore only decides *how many independent chains advance per
//! instruction*, never the order within any chain, so the results are
//! bit-identical to the naive kernel by construction: no FMA contraction
//! (every step is a separate IEEE-754 multiply and add, which rustc never
//! fuses without an explicit `mul_add`), no horizontal sums, no
//! tree reductions.
//!
//! Contrast with the classical row-of-dot-products layout, where a SIMD
//! kernel accumulates `LANES` partial sums per output element and folds
//! them with a horizontal reduction at the end — that *splits one
//! element's chain into interleaved sub-chains* and is only
//! value-approximate under f32 rounding. Lane-per-output tiling is the one
//! SIMD shape that is exact, which is why the fault-injection campaigns
//! (whose classifications compare activations bitwise) can run on it.
//!
//! Two kernels are exposed:
//!
//! - [`gemm_micro`] — the packed register-tiled kernel for `m >= 2`:
//!   [`MR`]`x`[`NR`] register tiles fed from `MR`-interleaved A strips and
//!   `NR`-interleaved B strips, blocked over `k` ([`KC`]) and `n` ([`NC`])
//!   so the active panels stay cache-resident. Full tiles run a
//!   const-generic microkernel whose accumulator array lowers to
//!   registers; ragged edge tiles (`m % MR`, `n % NR`, and the final
//!   partial `k`/`n` blocks) take a runtime-width copy of the same loop.
//! - [`gemm_row_lanes`] — the `m == 1` variant behind the early-exit row
//!   probes (`conv2d_channel_from_lowered`, `linear_row`): one output row
//!   held as [`NR1`]-wide lane groups across the full `k` depth, reading B
//!   directly (a single row has no panel reuse to pay packing for).
//!
//! `#[inline(never)]` on the public entry points pins one compiled copy of
//! each accumulation loop per code path, for the NaN-payload reasons
//! documented on [`gemm`](super::gemm).

use super::gemm::gemm;

/// Rows per register tile of [`gemm_micro`]. With [`NR`] = 8 the tile holds
/// `4 x 8 = 32` accumulator lanes — eight 4-wide vectors at the x86-64
/// baseline, within the sixteen-register budget alongside two B-row loads
/// and one broadcast A value (wider ISAs pack the same lanes into fewer,
/// wider registers).
pub const MR: usize = 4;

/// Column lanes per register tile of [`gemm_micro`].
pub const NR: usize = 8;

/// Lane width of the single-row kernel [`gemm_row_lanes`]: with only one
/// output row the whole register budget goes to column lanes.
pub const NR1: usize = 32;

/// `k`-block depth of [`gemm_micro`]: the reduction extent packed into one
/// pair of A/B panels. Accumulation across `k` blocks revisits each output
/// tile in increasing-`k0` order (load tile, extend its chains, store), so
/// blocking never reorders any element's chain — an f32 store/load
/// round-trip is exact.
const KC: usize = 256;

/// `n`-block width of [`gemm_micro`]: one packed B panel covers
/// `KC x NC` = 256 KiB of f32, sized to stay L2-resident while every
/// `m`-strip streams over it.
const NC: usize = 256;

/// Minimum `n` for [`gemm_row_lanes`] to beat the naive loop: below one
/// lane group the tiled pass degenerates into the edge loop plus call
/// overhead. [`gemm_row`] falls back to [`gemm`] under this.
const ROW_MIN_N: usize = NR1;

/// Maximum B footprint for [`gemm_row_lanes`]: the row kernel reads B in
/// [`NR1`]-wide column groups at row stride `n`, so each group's pass is a
/// strided walk the prefetcher only keeps fed while B is L2-resident.
/// Measured on the ResNet-20 probe shapes: 1.1-2.0x over naive up to this
/// bound, 0.9x once B spills (`1x576x1024`, 2.3 MiB) — there the naive
/// loop's purely sequential B stream wins and [`gemm_row`] falls back.
const ROW_MAX_B_BYTES: usize = 1 << 20;

/// Minimum multiply count for [`gemm_micro`] to amortize its A/B packing
/// passes; [`gemm_dispatch`](super::gemm_blocked) routes smaller problems
/// to the naive kernel. The floor is deliberately low — packing costs
/// `O(m*k + k*n)` against `O(m*k*n)` multiplies, so anything with a real
/// inner dimension clears it — and the `kernels` bench smoke gate verifies
/// no dispatched shape measures slower than naive.
const MICRO_MIN_MULS: usize = 16 * 1024;

/// The full-tile microkernel: an `MR_ x NR_` accumulator tile held in
/// registers across one packed `k` block.
///
/// `ap` is an `MR_`-interleaved A strip (`ap[ki * MR_ + r]`), `bp` an
/// `NR_`-interleaved B strip (`bp[ki * NR_ + j]`); their lengths fix the
/// block depth. `c` holds the tile's rows at stride `c_stride`. Each
/// `acc[r][j]` starts from the current `c` value and appends the block's
/// partial products in increasing-`ki` order — one multiply, one add per
/// step, exactly the naive kernel's per-element arithmetic.
#[inline(never)]
fn micro_full<const MR_: usize, const NR_: usize>(
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    c_stride: usize,
) {
    let mut acc = [[0.0f32; NR_]; MR_];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[r * c_stride..][..NR_]);
    }
    for (a_k, b_k) in ap.chunks_exact(MR_).zip(bp.chunks_exact(NR_)) {
        for (r, row) in acc.iter_mut().enumerate() {
            let a_v = a_k[r];
            for (acc_v, &b_v) in row.iter_mut().zip(b_k) {
                *acc_v += a_v * b_v;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * c_stride..][..NR_].copy_from_slice(row);
    }
}

/// Runtime-width edge tile: the same loop as [`micro_full`] for the ragged
/// `m % MR` / `n % NR` borders, with `mr <= MR` rows and `nr <= NR` lanes
/// live. Slower (the accumulators may not all stay in registers) but
/// bit-identical — the per-element chain is the same one-multiply-one-add
/// sequence in the same order — and edges are an `O(1/MR + 1/NR)` sliver
/// of the iteration space.
fn micro_edge(mr: usize, nr: usize, ap: &[f32], bp: &[f32], c: &mut [f32], c_stride: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[r * c_stride..][..nr]);
    }
    for (a_k, b_k) in ap.chunks_exact(mr).zip(bp.chunks_exact(nr)) {
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            let a_v = a_k[r];
            for (acc_v, &b_v) in row[..nr].iter_mut().zip(b_k) {
                *acc_v += a_v * b_v;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        c[r * c_stride..][..nr].copy_from_slice(&row[..nr]);
    }
}

/// Packs the `kw`-deep slice of A rows `m0..m0+mw` (of a row-major
/// `m x k` A) into `MR`-interleaved strips: strip `s` holds rows
/// `m0 + s*MR ..` as `ap[strip_base + ki * sw + r]` with `sw` the strip's
/// live row count (`MR`, or the ragged tail). Pure data movement.
fn pack_a(a: &[f32], k: usize, m0: usize, mw: usize, k0: usize, kw: usize, ap: &mut [f32]) {
    let mut base = 0;
    let mut r0 = 0;
    while r0 < mw {
        let sw = MR.min(mw - r0);
        for r in 0..sw {
            let src = &a[(m0 + r0 + r) * k + k0..][..kw];
            for (ki, &v) in src.iter().enumerate() {
                ap[base + ki * sw + r] = v;
            }
        }
        base += kw * sw;
        r0 += sw;
    }
}

/// Packs the `kw x nw` block of B at `(k0, n0)` (of a row-major `k x n` B)
/// into `NR`-interleaved strips: strip `t` holds columns `n0 + t*NR ..` as
/// `bp[strip_base + ki * tw + j]` with `tw` the strip's live lane count.
/// Pure data movement.
fn pack_b(b: &[f32], n: usize, k0: usize, kw: usize, n0: usize, nw: usize, bp: &mut [f32]) {
    let mut base = 0;
    let mut j0 = 0;
    while j0 < nw {
        let tw = NR.min(nw - j0);
        for ki in 0..kw {
            let src = &b[(k0 + ki) * n + n0 + j0..][..tw];
            bp[base + ki * tw..][..tw].copy_from_slice(src);
        }
        base += kw * tw;
        j0 += tw;
    }
}

/// Register-tiled matrix multiply `c[m][n] += a[m][k] * b[k][n]`,
/// bit-identical to [`gemm`](super::gemm).
///
/// Blocks the reduction over [`KC`] and the columns over [`NC`], packs the
/// active A block into `MR`-interleaved strips and the active B block into
/// `NR`-interleaved strips (so the microkernel's operand streams are
/// contiguous), and walks `MR x NR` register tiles over the block. Each
/// output element's partial products still arrive strictly in
/// increasing-`ki` order — `k` blocks are visited in order and extend the
/// stored accumulation chain exactly where it left off — so tiling,
/// packing, and SIMD lane width are all invisible in the result bits (see
/// the module docs for the lane-per-output argument, and the
/// `kernel_bitident` proptests for the pin).
///
/// `scratch` holds the packed panels (`~(min(m, KC-rounded) + NC) * KC`
/// floats); it is resized as needed and holds unspecified contents on
/// return — recycle it through a
/// [`ScratchArena`](crate::ScratchArena) on hot paths.
///
/// # Panics
///
/// Panics when the slice lengths do not match `m*k` / `k*n` / `m*n`, in
/// release builds too (a silent mis-multiply would corrupt fault
/// classifications).
#[inline(never)]
pub fn gemm_micro(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    scratch: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(c.len(), m * n, "gemm: out length");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let ap_len = m * KC.min(k);
    let bp_len = KC.min(k) * NC.min(n);
    if scratch.len() < ap_len + bp_len {
        scratch.resize(ap_len + bp_len, 0.0);
    }
    let (ap, bp) = scratch.split_at_mut(ap_len);
    for k0 in (0..k).step_by(KC) {
        let kw = KC.min(k - k0);
        pack_a(a, k, 0, m, k0, kw, ap);
        for n0 in (0..n).step_by(NC) {
            let nw = NC.min(n - n0);
            pack_b(b, n, k0, kw, n0, nw, bp);
            let mut a_base = 0;
            let mut m0 = 0;
            while m0 < m {
                let mw = MR.min(m - m0);
                let a_strip = &ap[a_base..a_base + kw * mw];
                let mut b_base = 0;
                let mut j0 = 0;
                while j0 < nw {
                    let jw = NR.min(nw - j0);
                    let b_strip = &bp[b_base..b_base + kw * jw];
                    let c_tile = &mut c[m0 * n + n0 + j0..];
                    if mw == MR && jw == NR {
                        micro_full::<MR, NR>(a_strip, b_strip, c_tile, n);
                    } else {
                        micro_edge(mw, jw, a_strip, b_strip, c_tile, n);
                    }
                    b_base += kw * jw;
                    j0 += jw;
                }
                a_base += kw * mw;
                m0 += mw;
            }
        }
    }
}

/// The full-width lane group of [`gemm_row_lanes`]: [`NR1`] accumulator
/// lanes over the whole `k` depth, reading B directly at row stride
/// `n` (`b_cols` starts at the group's first column).
#[inline(never)]
fn row_full(k: usize, n: usize, a: &[f32], b_cols: &[f32], c: &mut [f32]) {
    let mut acc = [0.0f32; NR1];
    acc.copy_from_slice(&c[..NR1]);
    for (ki, &a_v) in a.iter().enumerate().take(k) {
        let b_k = &b_cols[ki * n..][..NR1];
        for (acc_v, &b_v) in acc.iter_mut().zip(b_k) {
            *acc_v += a_v * b_v;
        }
    }
    c[..NR1].copy_from_slice(&acc);
}

/// Runtime-width edge group of [`gemm_row_lanes`] for the ragged
/// `n % NR1` columns.
fn row_edge(k: usize, n: usize, nr: usize, a: &[f32], b_cols: &[f32], c: &mut [f32]) {
    let mut acc = [0.0f32; NR1];
    acc[..nr].copy_from_slice(&c[..nr]);
    for (ki, &a_v) in a.iter().enumerate().take(k) {
        let b_k = &b_cols[ki * n..][..nr];
        for (acc_v, &b_v) in acc[..nr].iter_mut().zip(b_k) {
            *acc_v += a_v * b_v;
        }
    }
    c[..nr].copy_from_slice(&acc[..nr]);
}

/// Single-row register-tiled multiply `c[n] += a[k] . b[k][n]`,
/// bit-identical to `gemm(1, k, n, ..)`.
///
/// The row kernel behind the early-exit probes: one weight row against a
/// full im2col panel. Column lanes are held in registers across the whole
/// `k` depth, so C is touched once instead of `k` times; B is read in
/// place (one row of output has no reuse to amortize packing). Each
/// output lane's chain is the naive kernel's chain, in the same order.
///
/// # Panics
///
/// Panics when the slice lengths do not match `k` / `k*n` / `n`.
#[inline(never)]
pub fn gemm_row_lanes(k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k, "gemm: lhs length");
    assert_eq!(b.len(), k * n, "gemm: rhs length");
    assert_eq!(c.len(), n, "gemm: out length");
    let mut n0 = 0;
    while n0 + NR1 <= n {
        row_full(k, n, a, &b[n0..], &mut c[n0..]);
        n0 += NR1;
    }
    if n0 < n {
        row_edge(k, n, n - n0, a, &b[n0..], &mut c[n0..]);
    }
}

/// The `m == 1` dispatch entry: [`gemm_row_lanes`] when the row is wide
/// enough for at least one full lane group *and* B is small enough for
/// the lane kernel's strided reads to stay cache-fed ([`ROW_MAX_B_BYTES`]),
/// the naive kernel otherwise. Bit-identical either way.
///
/// # Panics
///
/// Same length checks as [`gemm_row_lanes`].
pub fn gemm_row(k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if gemm_selected_kernel(1, k, n) == "row" {
        gemm_row_lanes(k, n, a, b, c);
    } else {
        gemm(1, k, n, a, b, c);
    }
}

/// Whether the size-based dispatch selects the register-tiled microkernel
/// family for an `m x k x n` problem (`"micro"` / `"row"`), or falls back
/// to the naive loop (`"naive"`). Exposed so benches and CI gates can
/// assert the dispatch decision itself, not just its timing.
pub fn gemm_selected_kernel(m: usize, k: usize, n: usize) -> &'static str {
    if m == 1 {
        let row = n >= ROW_MIN_N && k * n * std::mem::size_of::<f32>() <= ROW_MAX_B_BYTES;
        return if row { "row" } else { "naive" };
    }
    if m >= 2 && n >= NR && m * k * n >= MICRO_MIN_MULS {
        "micro"
    } else {
        "naive"
    }
}

/// The general dispatch used by [`gemm_blocked`](super::gemm_blocked):
/// routes to [`gemm_row`] (`m == 1`), [`gemm_micro`] (large enough to
/// amortize packing), or the naive kernel (everything else), per
/// [`gemm_selected_kernel`]. All three tiers are bit-identical.
pub fn gemm_dispatch(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    scratch: &mut Vec<f32>,
) {
    match gemm_selected_kernel(m, k, n) {
        "row" => gemm_row_lanes(k, n, a, b, c),
        "micro" => gemm_micro(m, k, n, a, b, c, scratch),
        _ => gemm(m, k, n, a, b, c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill touching negatives and varied
    /// magnitudes.
    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 1000) as f32 * 0.013 - 6.5
            })
            .collect()
    }

    fn assert_bits(c0: &[f32], c1: &[f32], what: &str) {
        let same = c0.iter().zip(c1).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{what} diverged");
    }

    #[test]
    fn micro_matches_naive_across_tile_and_block_boundaries() {
        // Shapes straddling MR/NR/KC/NC, including exact multiples,
        // one-past, ragged everything, and degenerate dims.
        let mut scratch = Vec::new();
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 5),
            (MR, 7, NR),
            (MR + 1, KC, NC),
            (MR * 3 + 2, KC + 1, NC + NR + 3),
            (5, 300, 17),
            (16, 144, 1024),
            (3, 2 * KC + 5, 40),
            (7, 0, 9),
            (0, 4, 4),
            (4, 4, 0),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut c0 = fill(m * n, 3); // nonzero accumulator base
            let mut c1 = c0.clone();
            gemm(m, k, n, &a, &b, &mut c0);
            gemm_micro(m, k, n, &a, &b, &mut c1, &mut scratch);
            assert_bits(&c0, &c1, &format!("micro {m}x{k}x{n}"));
        }
    }

    #[test]
    fn row_lanes_matches_naive_including_ragged_tail() {
        for &(k, n) in &[(1usize, 1usize), (9, NR1), (9, NR1 - 1), (144, 1024), (7, NR1 * 2 + 5)] {
            let a = fill(k, 4);
            let b = fill(k * n, 5);
            let mut c0 = fill(n, 6);
            let mut c1 = c0.clone();
            gemm(1, k, n, &a, &b, &mut c0);
            gemm_row(k, n, &a, &b, &mut c1);
            assert_bits(&c0, &c1, &format!("row 1x{k}x{n}"));
        }
    }

    #[test]
    fn micro_propagates_nan_and_inf_bitwise() {
        // One payload family per operand mix (see the gemm bit-identity
        // notes): literal NaNs here, infinities in the row test below.
        let (m, k, n) = (MR + 2, 140, NC + 13);
        let mut a = fill(m * k, 9);
        let mut b = fill(k * n, 10);
        a[5] = f32::NAN;
        a[k + 3] = f32::NAN;
        b[17] = f32::NAN;
        b[k * n - 1] = f32::NAN;
        let mut c0 = vec![0.0; m * n];
        let mut c1 = vec![0.0; m * n];
        let mut scratch = vec![f32::NAN; 3]; // dirty, undersized scratch
        gemm(m, k, n, &a, &b, &mut c0);
        gemm_micro(m, k, n, &a, &b, &mut c1, &mut scratch);
        assert_bits(&c0, &c1, "micro NaN");
    }

    #[test]
    fn row_lanes_propagates_inf_bitwise() {
        let (k, n) = (50, NR1 + 7);
        let mut a = fill(k, 11);
        let mut b = fill(k * n, 12);
        a[0] = 0.0; // 0 * Inf => the indefinite NaN, same family throughout
        b[3] = f32::INFINITY;
        b[n + 4] = f32::NEG_INFINITY;
        a[k - 1] = f32::INFINITY;
        let mut c0 = fill(n, 13);
        let mut c1 = c0.clone();
        gemm(1, k, n, &a, &b, &mut c0);
        gemm_row_lanes(k, n, &a, &b, &mut c1);
        assert_bits(&c0, &c1, "row Inf");
    }

    #[test]
    fn dispatch_tiers_cover_the_space() {
        assert_eq!(gemm_selected_kernel(1, 9, 1024), "row");
        assert_eq!(gemm_selected_kernel(1, 9, 4), "naive");
        assert_eq!(gemm_selected_kernel(1, 576, 1024), "naive"); // B spills L2
        assert_eq!(gemm_selected_kernel(1, 288, 512), "row"); // B L2-resident
        assert_eq!(gemm_selected_kernel(64, 576, 1024), "micro");
        assert_eq!(gemm_selected_kernel(32, 288, 512), "micro");
        assert_eq!(gemm_selected_kernel(4, 4, 4), "naive"); // under the mul floor
        assert_eq!(gemm_selected_kernel(10, 64, 1), "naive"); // n < NR
    }
}
