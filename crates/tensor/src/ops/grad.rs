//! Backward (gradient) counterparts of the inference operators.
//!
//! These power the training subsystem in `sfi-nn`: reproducing the paper
//! end-to-end needs *trained* golden weights (its models reach ~92% on
//! CIFAR-10), and training needs gradients. Each function computes the
//! vector-Jacobian product of its forward op; all are validated against
//! finite-difference gradients in the test suite.

use crate::{Shape, Tensor, TensorError};

use super::conv::Conv2dCfg;

/// Gradients of [`conv2d`](super::conv2d) with respect to its input and
/// weight.
///
/// `grad_out` has the forward output's shape `[N, C_out, H_out, W_out]`.
/// Returns `(grad_input, grad_weight)` with the shapes of `input` and
/// `weight`.
///
/// # Errors
///
/// Returns an error when the operand shapes are inconsistent with a
/// forward call of the same configuration.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    cfg: Conv2dCfg,
) -> Result<(Tensor, Tensor), TensorError> {
    const OP: &str = "conv2d_backward";
    // Re-derive and validate the forward geometry.
    let forward = super::conv2d(input, weight, None, cfg)?;
    if forward.shape() != grad_out.shape() {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: grad_out.shape(),
            rhs: forward.shape(),
        });
    }
    let (batch, c_in, h_in, w_in) =
        (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    let (c_out, c_in_g, k_h, k_w) =
        (weight.shape().n(), weight.shape().c(), weight.shape().h(), weight.shape().w());
    let (h_out, w_out) = (grad_out.shape().h(), grad_out.shape().w());
    let pad = match cfg.padding {
        super::Padding::Same => (k_h.max(k_w) - 1) / 2,
        super::Padding::Explicit(p) => p,
    };
    let c_out_g = c_out / cfg.groups;

    let mut grad_input = Tensor::zeros(input.shape());
    let mut grad_weight = Tensor::zeros(weight.shape());
    let gi = grad_input.as_mut_slice();
    let gw = grad_weight.as_mut_slice();
    let x = input.as_slice();
    let w = weight.as_slice();
    let go = grad_out.as_slice();

    for n in 0..batch {
        for co in 0..c_out {
            let g = co / c_out_g;
            for oh in 0..h_out {
                for ow in 0..w_out {
                    let go_v = go[((n * c_out + co) * h_out + oh) * w_out + ow];
                    if go_v == 0.0 {
                        continue;
                    }
                    for ci_g in 0..c_in_g {
                        let ci = g * c_in_g + ci_g;
                        for kh in 0..k_h {
                            let ih = (oh * cfg.stride + kh) as isize - pad as isize;
                            if ih < 0 || ih as usize >= h_in {
                                continue;
                            }
                            for kw in 0..k_w {
                                let iw = (ow * cfg.stride + kw) as isize - pad as isize;
                                if iw < 0 || iw as usize >= w_in {
                                    continue;
                                }
                                let x_idx =
                                    ((n * c_in + ci) * h_in + ih as usize) * w_in + iw as usize;
                                let w_idx = ((co * c_in_g + ci_g) * k_h + kh) * k_w + kw;
                                gi[x_idx] += go_v * w[w_idx];
                                gw[w_idx] += go_v * x[x_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok((grad_input, grad_weight))
}

/// Gradients of [`linear`](super::linear): `(grad_input, grad_weight,
/// grad_bias)`.
///
/// # Errors
///
/// Returns an error when the operand shapes are inconsistent.
pub fn linear_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    const OP: &str = "linear_backward";
    let batch = input.shape().dims()[0];
    let in_f = input.shape().dims()[1];
    let out_f = weight.shape().dims()[0];
    if grad_out.shape() != Shape::new(&[batch, out_f]) || weight.shape().dims()[1] != in_f {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: grad_out.shape(),
            rhs: Shape::new(&[batch, out_f]),
        });
    }
    let mut gx = Tensor::zeros([batch, in_f]);
    let mut gw = Tensor::zeros([out_f, in_f]);
    let mut gb = Tensor::zeros([out_f]);
    let (x, w, go) = (input.as_slice(), weight.as_slice(), grad_out.as_slice());
    {
        let gx = gx.as_mut_slice();
        let gw = gw.as_mut_slice();
        let gb = gb.as_mut_slice();
        for b in 0..batch {
            for o in 0..out_f {
                let g = go[b * out_f + o];
                if g == 0.0 {
                    continue;
                }
                gb[o] += g;
                for i in 0..in_f {
                    gx[b * in_f + i] += g * w[o * in_f + i];
                    gw[o * in_f + i] += g * x[b * in_f + i];
                }
            }
        }
    }
    Ok((gx, gw, gb))
}

/// Gradient of [`relu`](super::relu): passes `grad_out` where the forward
/// *input* was positive.
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn relu_backward(input: &Tensor, grad_out: &Tensor) -> Result<Tensor, TensorError> {
    if input.shape() != grad_out.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "relu_backward",
            lhs: input.shape(),
            rhs: grad_out.shape(),
        });
    }
    let data =
        input.iter().zip(grad_out.iter()).map(|(x, g)| if x > 0.0 { g } else { 0.0 }).collect();
    Tensor::from_vec(input.shape(), data)
}

/// Gradient of [`relu6`](super::relu6): passes `grad_out` where the
/// forward input was strictly inside `(0, 6)`.
///
/// # Errors
///
/// Returns an error when the shapes differ.
pub fn relu6_backward(input: &Tensor, grad_out: &Tensor) -> Result<Tensor, TensorError> {
    if input.shape() != grad_out.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "relu6_backward",
            lhs: input.shape(),
            rhs: grad_out.shape(),
        });
    }
    let data = input
        .iter()
        .zip(grad_out.iter())
        .map(|(x, g)| if x > 0.0 && x < 6.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(input.shape(), data)
}

/// Gradients of inference-mode [`batch_norm`](super::batch_norm) with
/// *frozen* running statistics: `(grad_input, grad_gamma, grad_beta)`.
///
/// With frozen `μ, σ²` the op is an affine map per channel, so
/// `∂y/∂x = γ/√(σ²+ε)` and the parameter gradients are plain reductions.
/// (This is the "fine-tuning" BN mode; it avoids the batch-statistics
/// coupling of full training-mode BN, which the SFI workload never needs.)
///
/// # Errors
///
/// Returns an error when the operand shapes are inconsistent.
pub fn batch_norm_backward(
    input: &Tensor,
    gamma: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
    grad_out: &Tensor,
) -> Result<(Tensor, Tensor, Tensor), TensorError> {
    const OP: &str = "batch_norm_backward";
    if input.shape() != grad_out.shape() {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: input.shape(),
            rhs: grad_out.shape(),
        });
    }
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    if gamma.shape() != Shape::new(&[c]) {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: gamma.shape(),
            rhs: Shape::new(&[c]),
        });
    }
    let spatial = h * w;
    let mut gx = Tensor::zeros(input.shape());
    let mut gg = Tensor::zeros([c]);
    let mut gb = Tensor::zeros([c]);
    let x = input.as_slice();
    let go = grad_out.as_slice();
    {
        let gx = gx.as_mut_slice();
        let gg = gg.as_mut_slice();
        let gb = gb.as_mut_slice();
        for ci in 0..c {
            let inv_std = 1.0 / (var.as_slice()[ci] + eps).sqrt();
            let scale = gamma.as_slice()[ci] * inv_std;
            let mu = mean.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for s in 0..spatial {
                    let g = go[base + s];
                    gx[base + s] = g * scale;
                    gg[ci] += g * (x[base + s] - mu) * inv_std;
                    gb[ci] += g;
                }
            }
        }
    }
    Ok((gx, gg, gb))
}

/// Gradient of [`avg_pool2d`](super::avg_pool2d): spreads each output
/// gradient uniformly over its `kernel × kernel` window.
///
/// # Errors
///
/// Returns an error when the geometry is inconsistent.
pub fn avg_pool2d_backward(
    input_shape: Shape,
    kernel: usize,
    grad_out: &Tensor,
) -> Result<Tensor, TensorError> {
    const OP: &str = "avg_pool2d_backward";
    let (n, c, h, w) = (input_shape.n(), input_shape.c(), input_shape.h(), input_shape.w());
    if kernel == 0 || h % kernel != 0 || w % kernel != 0 {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("kernel {kernel} does not divide {h}x{w}"),
        });
    }
    let (h_out, w_out) = (h / kernel, w / kernel);
    if grad_out.shape() != Shape::new(&[n, c, h_out, w_out]) {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: grad_out.shape(),
            rhs: Shape::new(&[n, c, h_out, w_out]),
        });
    }
    let mut gx = Tensor::zeros(input_shape);
    let norm = 1.0 / (kernel * kernel) as f32;
    let go = grad_out.as_slice();
    let gx_s = gx.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            for oh in 0..h_out {
                for ow in 0..w_out {
                    let g = go[((ni * c + ci) * h_out + oh) * w_out + ow] * norm;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            gx_s[((ni * c + ci) * h + oh * kernel + kh) * w + ow * kernel + kw] +=
                                g;
                        }
                    }
                }
            }
        }
    }
    Ok(gx)
}

/// Gradient of [`max_pool2d`](super::max_pool2d): routes each output
/// gradient to the position the forward pass selected (first maximum in
/// scan order, NaN-aware — matching the forward's tie-breaking exactly).
///
/// # Errors
///
/// Returns an error when the geometry is inconsistent.
pub fn max_pool2d_backward(
    input: &Tensor,
    kernel: usize,
    grad_out: &Tensor,
) -> Result<Tensor, TensorError> {
    const OP: &str = "max_pool2d_backward";
    let (n, c, h, w) = (input.shape().n(), input.shape().c(), input.shape().h(), input.shape().w());
    if kernel == 0 || h % kernel != 0 || w % kernel != 0 {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("kernel {kernel} does not divide {h}x{w}"),
        });
    }
    let (h_out, w_out) = (h / kernel, w / kernel);
    if grad_out.shape() != Shape::new(&[n, c, h_out, w_out]) {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: grad_out.shape(),
            rhs: Shape::new(&[n, c, h_out, w_out]),
        });
    }
    let mut gx = Tensor::zeros(input.shape());
    let x = input.as_slice();
    let go = grad_out.as_slice();
    let gx_s = gx.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let chan_base = (ni * c + ci) * h * w;
            for oh in 0..h_out {
                for ow in 0..w_out {
                    // Re-run the forward selection to find the winner.
                    let mut best_idx = chan_base + oh * kernel * w + ow * kernel;
                    let mut best = f32::NEG_INFINITY;
                    let mut seen = false;
                    for kh in 0..kernel {
                        for kw in 0..kernel {
                            let idx = chan_base + (oh * kernel + kh) * w + ow * kernel + kw;
                            let v = x[idx];
                            if !v.is_nan() && (v > best || !seen) {
                                best = v;
                                best_idx = idx;
                                seen = true;
                            }
                        }
                    }
                    gx_s[best_idx] += go[((ni * c + ci) * h_out + oh) * w_out + ow];
                }
            }
        }
    }
    Ok(gx)
}

/// Gradient of [`global_avg_pool`](super::global_avg_pool).
///
/// # Errors
///
/// Returns an error when the geometry is inconsistent.
pub fn global_avg_pool_backward(
    input_shape: Shape,
    grad_out: &Tensor,
) -> Result<Tensor, TensorError> {
    const OP: &str = "global_avg_pool_backward";
    let (n, c, h, w) = (input_shape.n(), input_shape.c(), input_shape.h(), input_shape.w());
    if grad_out.shape() != Shape::new(&[n, c]) {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: grad_out.shape(),
            rhs: Shape::new(&[n, c]),
        });
    }
    let mut gx = Tensor::zeros(input_shape);
    let norm = 1.0 / (h * w) as f32;
    let go = grad_out.as_slice();
    let gx_s = gx.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let g = go[ni * c + ci] * norm;
            for s in 0..h * w {
                gx_s[(ni * c + ci) * h * w + s] = g;
            }
        }
    }
    Ok(gx)
}

/// Gradient of
/// [`downsample_pad_channels`](super::downsample_pad_channels): routes the
/// gradients of the kept (subsampled, non-padded) positions back.
///
/// # Errors
///
/// Returns an error when the geometry is inconsistent.
pub fn downsample_pad_channels_backward(
    input_shape: Shape,
    out_channels: usize,
    stride: usize,
    grad_out: &Tensor,
) -> Result<Tensor, TensorError> {
    const OP: &str = "downsample_pad_backward";
    let (n, c, h, w) = (input_shape.n(), input_shape.c(), input_shape.h(), input_shape.w());
    if stride == 0 || out_channels < c {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: "stride must be nonzero and channels cannot shrink".into(),
        });
    }
    let (h_out, w_out) = (h.div_ceil(stride), w.div_ceil(stride));
    if grad_out.shape() != Shape::new(&[n, out_channels, h_out, w_out]) {
        return Err(TensorError::ShapeMismatch {
            op: OP,
            lhs: grad_out.shape(),
            rhs: Shape::new(&[n, out_channels, h_out, w_out]),
        });
    }
    let mut gx = Tensor::zeros(input_shape);
    let go = grad_out.as_slice();
    let gx_s = gx.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            for oh in 0..h_out {
                for ow in 0..w_out {
                    gx_s[((ni * c + ci) * h + oh * stride) * w + ow * stride] +=
                        go[((ni * out_channels + ci) * h_out + oh) * w_out + ow];
                }
            }
        }
    }
    Ok(gx)
}

/// Combined softmax + cross-entropy loss over logits `[N, classes]` with
/// integer labels. Returns `(mean_loss, grad_logits)` where the gradient is
/// the classic `softmax − one_hot`, scaled by `1/N`.
///
/// # Errors
///
/// Returns an error for non-rank-2 logits or an out-of-range label.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    const OP: &str = "softmax_cross_entropy";
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 2,
            actual: logits.shape().rank(),
        });
    }
    let batch = logits.shape().dims()[0];
    let classes = logits.shape().dims()[1];
    if labels.len() != batch {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("{} labels for batch of {batch}", labels.len()),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(TensorError::InvalidConfig {
            op: OP,
            reason: format!("label {bad} out of range 0..{classes}"),
        });
    }
    let probs = super::softmax(logits)?;
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    let scale = 1.0 / batch as f32;
    {
        let g = grad.as_mut_slice();
        let p = probs.as_slice();
        for (b, &label) in labels.iter().enumerate() {
            loss -= f64::from(p[b * classes + label].max(1e-12).ln());
            g[b * classes + label] -= 1.0;
            for c in 0..classes {
                g[b * classes + c] *= scale;
            }
        }
    }
    Ok(((loss / batch as f64) as f32, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    /// Numerical gradient of a scalar function of one tensor entry.
    fn numeric_grad(f: impl Fn(&Tensor) -> f32, at: &Tensor, idx: usize) -> f32 {
        let eps = 1e-3f32;
        let mut plus = at.clone();
        plus.as_mut_slice()[idx] += eps;
        let mut minus = at.clone();
        minus.as_mut_slice()[idx] -= eps;
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    fn ramp(shape: impl Into<Shape>, scale: f32) -> Tensor {
        let shape = shape.into();
        Tensor::from_fn(shape, |i| ((i % 17) as f32 - 8.0) * scale)
    }

    /// Scalar objective: sum of forward output (so grad_out = ones).
    #[test]
    fn conv2d_backward_matches_numeric() {
        let input = ramp([1, 2, 5, 5], 0.2);
        let weight = ramp([3, 2, 3, 3], 0.1);
        let cfg = Conv2dCfg::same(2);
        let ones = Tensor::full(ops::conv2d(&input, &weight, None, cfg).unwrap().shape(), 1.0);
        let (gx, gw) = conv2d_backward(&input, &weight, &ones, cfg).unwrap();
        let f_in = |t: &Tensor| ops::conv2d(t, &weight, None, cfg).unwrap().iter().sum::<f32>();
        let f_w = |t: &Tensor| ops::conv2d(&input, t, None, cfg).unwrap().iter().sum::<f32>();
        for idx in [0usize, 7, 23, 49] {
            let n = numeric_grad(f_in, &input, idx);
            assert!(
                (gx.as_slice()[idx] - n).abs() < 1e-2,
                "gx[{idx}] {} vs {n}",
                gx.as_slice()[idx]
            );
        }
        for idx in [0usize, 5, 17, 53] {
            let n = numeric_grad(f_w, &weight, idx);
            assert!(
                (gw.as_slice()[idx] - n).abs() < 1e-2,
                "gw[{idx}] {} vs {n}",
                gw.as_slice()[idx]
            );
        }
    }

    #[test]
    fn grouped_conv_backward_matches_numeric() {
        let input = ramp([1, 4, 4, 4], 0.2);
        let weight = ramp([4, 1, 3, 3], 0.1); // depthwise
        let cfg = Conv2dCfg::same(1).with_groups(4);
        let ones = Tensor::full(ops::conv2d(&input, &weight, None, cfg).unwrap().shape(), 1.0);
        let (gx, gw) = conv2d_backward(&input, &weight, &ones, cfg).unwrap();
        let f_in = |t: &Tensor| ops::conv2d(t, &weight, None, cfg).unwrap().iter().sum::<f32>();
        let f_w = |t: &Tensor| ops::conv2d(&input, t, None, cfg).unwrap().iter().sum::<f32>();
        for idx in [3usize, 20, 45] {
            assert!((gx.as_slice()[idx] - numeric_grad(f_in, &input, idx)).abs() < 1e-2);
        }
        for idx in [0usize, 10, 35] {
            assert!((gw.as_slice()[idx] - numeric_grad(f_w, &weight, idx)).abs() < 1e-2);
        }
    }

    #[test]
    fn linear_backward_matches_numeric() {
        let input = ramp([2, 4], 0.3);
        let weight = ramp([3, 4], 0.2);
        let ones = Tensor::full([2, 3], 1.0);
        let (gx, gw, gb) = linear_backward(&input, &weight, &ones).unwrap();
        let f_in = |t: &Tensor| ops::linear(t, &weight, None).unwrap().iter().sum::<f32>();
        let f_w = |t: &Tensor| ops::linear(&input, t, None).unwrap().iter().sum::<f32>();
        for idx in 0..8 {
            assert!((gx.as_slice()[idx] - numeric_grad(f_in, &input, idx)).abs() < 1e-2);
        }
        for idx in 0..12 {
            assert!((gw.as_slice()[idx] - numeric_grad(f_w, &weight, idx)).abs() < 1e-2);
        }
        // Bias gradient: d(sum)/d(b_o) = batch.
        assert!(gb.iter().all(|v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn relu_backward_gates_on_input_sign() {
        let input = Tensor::from_vec([4], vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        let g = Tensor::full([4], 3.0);
        let gx = relu_backward(&input, &g).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 0.0, 3.0, 3.0]);
    }

    #[test]
    fn relu6_backward_gates_both_sides() {
        let input = Tensor::from_vec([4], vec![-1.0, 3.0, 6.0, 9.0]).unwrap();
        let g = Tensor::full([4], 2.0);
        let gx = relu6_backward(&input, &g).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn batch_norm_backward_matches_numeric() {
        let input = ramp([1, 2, 3, 3], 0.4);
        let gamma = Tensor::from_vec([2], vec![1.2, 0.8]).unwrap();
        let beta = Tensor::from_vec([2], vec![0.1, -0.2]).unwrap();
        let mean = Tensor::from_vec([2], vec![0.3, -0.1]).unwrap();
        let var = Tensor::from_vec([2], vec![0.9, 1.4]).unwrap();
        let eps = 1e-5;
        let fwd = |x: &Tensor, g: &Tensor| {
            let p = ops::BatchNormParams { gamma: g, beta: &beta, mean: &mean, var: &var, eps };
            ops::batch_norm(x, &p).unwrap().iter().sum::<f32>()
        };
        let ones = Tensor::full(input.shape(), 1.0);
        let (gx, gg, gb) = batch_norm_backward(&input, &gamma, &mean, &var, eps, &ones).unwrap();
        for idx in [0usize, 5, 13] {
            let n = numeric_grad(|x| fwd(x, &gamma), &input, idx);
            assert!((gx.as_slice()[idx] - n).abs() < 1e-2);
        }
        for idx in 0..2 {
            let n = numeric_grad(|g| fwd(&input, g), &gamma, idx);
            assert!((gg.as_slice()[idx] - n).abs() < 1e-1, "gg[{idx}]");
            assert!((gb.as_slice()[idx] - 9.0).abs() < 1e-4, "gb = spatial count");
        }
    }

    #[test]
    fn pool_backwards_match_numeric() {
        let input = ramp([1, 2, 4, 4], 0.3);
        let ones_avg = Tensor::full([1, 2, 2, 2], 1.0);
        let g_avg = avg_pool2d_backward(input.shape(), 2, &ones_avg).unwrap();
        let f_avg = |t: &Tensor| ops::avg_pool2d(t, 2).unwrap().iter().sum::<f32>();
        for idx in [0usize, 9, 31] {
            assert!((g_avg.as_slice()[idx] - numeric_grad(f_avg, &input, idx)).abs() < 1e-3);
        }
        let ones_gap = Tensor::full([1, 2], 1.0);
        let g_gap = global_avg_pool_backward(input.shape(), &ones_gap).unwrap();
        let f_gap = |t: &Tensor| ops::global_avg_pool(t).unwrap().iter().sum::<f32>();
        for idx in [2usize, 17] {
            assert!((g_gap.as_slice()[idx] - numeric_grad(f_gap, &input, idx)).abs() < 1e-3);
        }
    }

    #[test]
    fn max_pool_backward_matches_numeric() {
        // Distinct values so the argmax is stable under the probe epsilon.
        let input = Tensor::from_fn([1, 2, 4, 4], |i| ((i * 13) % 31) as f32 * 0.5);
        let ones = Tensor::full([1, 2, 2, 2], 1.0);
        let gx = max_pool2d_backward(&input, 2, &ones).unwrap();
        let f = |t: &Tensor| ops::max_pool2d(t, 2).unwrap().iter().sum::<f32>();
        for idx in 0..32 {
            let n = numeric_grad(f, &input, idx);
            assert!((gx.as_slice()[idx] - n).abs() < 1e-2, "idx {idx}");
        }
        // Exactly one winner per window.
        let nonzero = gx.iter().filter(|&v| v != 0.0).count();
        assert_eq!(nonzero, 8);
    }

    #[test]
    fn downsample_backward_matches_numeric() {
        let input = ramp([1, 2, 4, 4], 0.3);
        let out_shape = ops::downsample_pad_channels(&input, 4, 2).unwrap().shape();
        let ones = Tensor::full(out_shape, 1.0);
        let gx = downsample_pad_channels_backward(input.shape(), 4, 2, &ones).unwrap();
        let f = |t: &Tensor| ops::downsample_pad_channels(t, 4, 2).unwrap().iter().sum::<f32>();
        for idx in 0..32 {
            assert!((gx.as_slice()[idx] - numeric_grad(f, &input, idx)).abs() < 1e-3, "{idx}");
        }
    }

    #[test]
    fn cross_entropy_loss_and_gradient() {
        let logits = Tensor::from_vec([2, 3], vec![2.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]).unwrap();
        assert!(loss > 0.0);
        // Gradient rows sum to zero (softmax minus one-hot).
        for b in 0..2 {
            let s: f32 = (0..3).map(|c| grad.get([b, c]).unwrap()).sum();
            assert!(s.abs() < 1e-6);
        }
        // Perfect predictions give near-zero loss.
        let confident = Tensor::from_vec([1, 3], vec![100.0, 0.0, 0.0]).unwrap();
        let (l2, _) = softmax_cross_entropy(&confident, &[0]).unwrap();
        assert!(l2 < 1e-4);
        // Gradient matches the numeric derivative of the loss.
        let f = |t: &Tensor| softmax_cross_entropy(t, &[0, 2]).unwrap().0;
        for idx in 0..6 {
            let eps = 1e-3f32;
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let n = (f(&plus) - f(&minus)) / (2.0 * eps);
            assert!((grad.as_slice()[idx] - n).abs() < 1e-3, "grad[{idx}]");
        }
    }

    #[test]
    fn error_paths() {
        let x = Tensor::zeros([1, 1, 4, 4]);
        let w = Tensor::zeros([1, 1, 3, 3]);
        let bad_go = Tensor::zeros([1, 1, 9, 9]);
        assert!(conv2d_backward(&x, &w, &bad_go, Conv2dCfg::same(1)).is_err());
        assert!(relu_backward(&x, &Tensor::zeros([2, 2])).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros([2, 3]), &[0]).is_err());
        assert!(softmax_cross_entropy(&Tensor::zeros([1, 3]), &[5]).is_err());
        assert!(avg_pool2d_backward(Shape::new(&[1, 1, 5, 5]), 2, &Tensor::zeros([1, 1, 2, 2]))
            .is_err());
    }
}
