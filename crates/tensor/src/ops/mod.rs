//! Numeric operators over [`Tensor`](crate::Tensor)s.
//!
//! Every operator is a free function that borrows its operands, validates
//! shapes, and returns a freshly allocated result — callers decide where data
//! lives. The set is exactly what the two case-study CNNs (ResNet-20,
//! MobileNetV2) require:
//!
//! - [`conv2d`] (grouped / depthwise aware), with [`conv2d_direct`] and
//!   [`conv2d_im2col`] exposed separately for the conv-strategy ablation
//!   bench,
//! - [`linear`] fully-connected layers,
//! - [`batch_norm`] in inference mode,
//! - [`relu`], [`relu6`], [`softmax`],
//! - [`avg_pool2d`], [`max_pool2d`], [`global_avg_pool`],
//! - [`add`] residual addition and [`downsample_pad_channels`]
//!   (ResNet "option A" shortcut),
//! - [`gemm`] the blocked matrix multiply underneath `im2col` convolution.

mod activation;
mod conv;
mod elementwise;
mod gemm;
mod linear;
mod norm;
mod pool;

pub mod grad;

pub use activation::{relu, relu6, softmax};
pub use conv::{conv2d, conv2d_direct, conv2d_im2col, Conv2dCfg, Padding};
pub use elementwise::{add, downsample_pad_channels};
pub use gemm::gemm;
pub use linear::linear;
pub use norm::{batch_norm, BatchNormParams};
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d};
