//! Numeric operators over [`Tensor`](crate::Tensor)s.
//!
//! Every operator is a free function that borrows its operands, validates
//! shapes, and returns a freshly allocated result — callers decide where data
//! lives. The set is exactly what the two case-study CNNs (ResNet-20,
//! MobileNetV2) require:
//!
//! - [`conv2d`] (grouped / depthwise aware), with [`conv2d_direct`] and
//!   [`conv2d_im2col`] exposed separately for the conv-strategy ablation
//!   bench, [`conv2d_with`] for arena-backed buffers, and the
//!   [`im2col_lower`] / [`conv2d_from_lowered`] pair for campaign-level
//!   column-matrix caching,
//! - [`linear`] fully-connected layers,
//! - [`batch_norm`] in inference mode,
//! - [`relu`], [`relu6`], [`softmax`],
//! - [`avg_pool2d`], [`max_pool2d`], [`global_avg_pool`],
//! - [`add`] residual addition and [`downsample_pad_channels`]
//!   (ResNet "option A" shortcut),
//! - [`gemm`] and its bit-identical self-dispatching sibling
//!   [`gemm_blocked`], the matrix multiplies underneath `im2col`
//!   convolution, backed by the register-tiled microkernels [`gemm_micro`]
//!   and [`gemm_row_lanes`] (lane-per-output tiling — see the
//!   `microkernel` module docs for why that SIMD shape is the bit-exact
//!   one).

mod activation;
mod conv;
mod elementwise;
mod gemm;
mod linear;
mod microkernel;
mod norm;
mod pool;

pub mod grad;

pub use activation::{relu, relu6, relu6_with, relu_with, softmax};
pub use conv::{
    conv2d, conv2d_batched_from_lowered, conv2d_channel_batched, conv2d_channel_from_lowered,
    conv2d_direct, conv2d_from_lowered, conv2d_im2col, conv2d_kernel, conv2d_uses_lowering,
    conv2d_with, im2col_lower, im2col_lower_batched, BatchedLowered, Conv2dCfg, ConvEpilogue,
    FusedActivation, GemmKernel, LoweredConv, Padding,
};
pub use elementwise::{add, add_with, downsample_pad_channels};
pub use gemm::{gemm, gemm_blocked, gemm_blocked_with, gemm_packed, gemm_packed_rows, gemm_rows};
pub use linear::{linear, linear_row};
pub use microkernel::{
    gemm_micro, gemm_row, gemm_row_lanes, gemm_selected_kernel, MR as MICRO_MR, NR as MICRO_NR,
    NR1 as MICRO_NR1,
};
pub use norm::{batch_norm, batch_norm_with, bn_channel_scale_shift, BatchNormParams};
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d};
