use crate::{Shape, Tensor, TensorError};

/// Per-channel parameters of an inference-mode batch normalisation.
///
/// All four tensors are rank 1 of length `C` (the channel count of the
/// input). The transform applied per channel `c` is
/// `y = gamma[c] * (x - mean[c]) / sqrt(var[c] + eps) + beta[c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNormParams<'a> {
    /// Learned scale `γ`.
    pub gamma: &'a Tensor,
    /// Learned shift `β`.
    pub beta: &'a Tensor,
    /// Running mean `μ`.
    pub mean: &'a Tensor,
    /// Running variance `σ²` (non-negative).
    pub var: &'a Tensor,
    /// Numerical-stability epsilon; PyTorch's default is `1e-5`.
    pub eps: f32,
}

/// Inference-mode batch normalisation over an NCHW tensor.
///
/// # Errors
///
/// Returns an error when the input is not rank 4 or any parameter tensor is
/// not rank 1 of length `C`.
///
/// # Example
///
/// ```
/// use sfi_tensor::{ops, Tensor};
///
/// # fn main() -> Result<(), sfi_tensor::TensorError> {
/// let x = Tensor::full([1, 1, 2, 2], 3.0);
/// let gamma = Tensor::full([1], 2.0);
/// let beta = Tensor::full([1], 1.0);
/// let mean = Tensor::full([1], 3.0);
/// let var = Tensor::full([1], 1.0);
/// let params = ops::BatchNormParams { gamma: &gamma, beta: &beta, mean: &mean, var: &var, eps: 0.0 };
/// let y = ops::batch_norm(&x, &params)?;
/// // (3 - 3) / 1 * 2 + 1 = 1
/// assert_eq!(y.as_slice(), &[1.0; 4]);
/// # Ok(())
/// # }
/// ```
pub fn batch_norm(input: &Tensor, params: &BatchNormParams<'_>) -> Result<Tensor, TensorError> {
    validate(input, params)?;
    let mut out = input.clone();
    bn_apply(out.as_mut_slice(), input.shape(), params);
    Ok(out)
}

/// [`batch_norm`] drawing its output buffer from `arena` — the campaign hot
/// path. Bit-identical to [`batch_norm`] (the same in-place kernel runs on
/// a copied buffer); only the buffer provenance differs.
///
/// # Errors
///
/// Same conditions as [`batch_norm`].
pub fn batch_norm_with(
    input: &Tensor,
    params: &BatchNormParams<'_>,
    arena: &mut crate::ScratchArena,
) -> Result<Tensor, TensorError> {
    validate(input, params)?;
    let mut data = arena.take(input.len());
    data.copy_from_slice(input.as_slice());
    bn_apply(&mut data, input.shape(), params);
    Ok(Tensor::from_vec(input.shape(), data).expect("same length as input"))
}

fn validate(input: &Tensor, params: &BatchNormParams<'_>) -> Result<(), TensorError> {
    const OP: &str = "batch_norm";
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: OP,
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    let want = Shape::new(&[input.shape().c()]);
    for t in [params.gamma, params.beta, params.mean, params.var] {
        if t.shape() != want {
            return Err(TensorError::ShapeMismatch { op: OP, lhs: t.shape(), rhs: want });
        }
    }
    Ok(())
}

/// The shared normalisation kernel: one compiled loop serves both
/// [`batch_norm`] and [`batch_norm_with`], keeping them bit-identical by
/// construction.
fn bn_apply(data: &mut [f32], shape: Shape, params: &BatchNormParams<'_>) {
    let (n, c, h, w) = (shape.n(), shape.c(), shape.h(), shape.w());
    let spatial = h * w;
    for ci in 0..c {
        let (scale, shift) = bn_channel_scale_shift(params, ci);
        for ni in 0..n {
            let chan = &mut data[(ni * c + ci) * spatial..][..spatial];
            for v in chan {
                *v = *v * scale + shift;
            }
        }
    }
}

/// The per-channel affine coefficients batch normalisation folds to:
/// `y = x * scale + shift` with `scale = γ / sqrt(σ² + ε)` and
/// `shift = β - μ * scale`.
///
/// This is the **only** place those expressions are written — [`bn_apply`]
/// and the compiled-plan conv+bn(+ReLU) fused epilogue both call it — so
/// the folded and unfused paths stay bit-identical by construction: the
/// same f32 operation sequence produces the coefficients, and both apply
/// them as one `mul` followed by one `add` per element.
pub fn bn_channel_scale_shift(params: &BatchNormParams<'_>, channel: usize) -> (f32, f32) {
    let inv_std = 1.0 / (params.var.as_slice()[channel] + params.eps).sqrt();
    let scale = params.gamma.as_slice()[channel] * inv_std;
    let shift = params.beta.as_slice()[channel] - params.mean.as_slice()[channel] * scale;
    (scale, shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_params(c: usize) -> (Tensor, Tensor, Tensor, Tensor) {
        (Tensor::full([c], 1.0), Tensor::zeros([c]), Tensor::zeros([c]), Tensor::full([c], 1.0))
    }

    #[test]
    fn identity_params_are_identity() {
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32 * 0.5);
        let (g, b, m, v) = unit_params(3);
        let p = BatchNormParams { gamma: &g, beta: &b, mean: &m, var: &v, eps: 0.0 };
        let y = batch_norm(&x, &p).unwrap();
        assert!(x.max_abs_diff(&y).unwrap() < 1e-6);
    }

    #[test]
    fn normalises_per_channel() {
        let x = Tensor::from_vec([1, 2, 1, 2], vec![10.0, 10.0, -4.0, -4.0]).unwrap();
        let g = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec([2], vec![0.0, 1.0]).unwrap();
        let m = Tensor::from_vec([2], vec![10.0, -4.0]).unwrap();
        let v = Tensor::from_vec([2], vec![4.0, 1.0]).unwrap();
        let p = BatchNormParams { gamma: &g, beta: &b, mean: &m, var: &v, eps: 0.0 };
        let y = batch_norm(&x, &p).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn eps_prevents_division_by_zero() {
        let x = Tensor::full([1, 1, 1, 1], 5.0);
        let g = Tensor::full([1], 1.0);
        let b = Tensor::zeros([1]);
        let m = Tensor::zeros([1]);
        let v = Tensor::zeros([1]); // zero variance
        let p = BatchNormParams { gamma: &g, beta: &b, mean: &m, var: &v, eps: 1e-5 };
        let y = batch_norm(&x, &p).unwrap();
        assert!(y.as_slice()[0].is_finite());
    }

    #[test]
    fn rejects_wrong_param_length() {
        let x = Tensor::zeros([1, 3, 2, 2]);
        let (g, b, m, v) = unit_params(2);
        let p = BatchNormParams { gamma: &g, beta: &b, mean: &m, var: &v, eps: 1e-5 };
        assert!(batch_norm(&x, &p).is_err());
    }

    #[test]
    fn rejects_rank_two_input() {
        let x = Tensor::zeros([3, 3]);
        let (g, b, m, v) = unit_params(3);
        let p = BatchNormParams { gamma: &g, beta: &b, mean: &m, var: &v, eps: 1e-5 };
        assert!(batch_norm(&x, &p).is_err());
    }
}
