//! Minimal f32 tensor library and CNN inference operators.
//!
//! This crate is the computational substrate of the SFI workspace: a small,
//! dependency-free (beyond `serde`) NCHW tensor type plus every operator the
//! [DATE 2023 SFI paper]'s two case-study networks need — 2-D convolution
//! (grouped and depthwise), fully-connected layers, inference-mode batch
//! normalisation, ReLU/ReLU6, average pooling, zero padding, residual adds
//! and softmax.
//!
//! The design goals, in order:
//!
//! 1. **Determinism** — identical inputs produce bit-identical outputs on
//!    every run; fault-injection campaigns compare faulty against golden
//!    outputs, so any nondeterminism would masquerade as a fault effect.
//! 2. **Shape safety** — every operator validates its operand shapes and
//!    returns a structured [`TensorError`] instead of panicking.
//! 3. **Enough speed** — an `im2col` + blocked-GEMM convolution path keeps
//!    multi-million-fault campaigns tractable without unsafe code.
//!
//! # Example
//!
//! ```
//! use sfi_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), sfi_tensor::TensorError> {
//! // A 1x3x8x8 input convolved with four 3x3 kernels.
//! let input = Tensor::zeros([1, 3, 8, 8]);
//! let weight = Tensor::zeros([4, 3, 3, 3]);
//! let out = ops::conv2d(&input, &weight, None, ops::Conv2dCfg::same(1))?;
//! assert_eq!(out.shape().dims(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```
//!
//! [DATE 2023 SFI paper]: https://doi.org/10.23919/DATE56975.2023.10136998

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mask;
mod scratch;
mod shape;
mod tensor;

pub mod ops;

pub use error::TensorError;
pub use mask::{DirtyMask, DIRTY_BLOCK};
pub use scratch::{ArenaStats, ScratchArena};
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;
