//! Dirty-region masks for sparse delta propagation.
//!
//! A fault campaign represents a faulty activation as *golden + delta*: the
//! full tensor is materialized, but a [`DirtyMask`] records which parts may
//! differ bitwise from the golden activation. Delta-specialized kernels then
//! recompute only the dirty cone and leave every clean element as a plain
//! copy of golden — which is exact, because every clean element's dense
//! recomputation would read only bit-golden inputs and therefore reproduce
//! the golden bits.
//!
//! The mask is hierarchical in the sense the delta engine consumes it:
//! per *plane* (one `(image, channel)` feature map), then per spatial block
//! of [`DIRTY_BLOCK`] × [`DIRTY_BLOCK`] pixels. Rank-2 tensors (`[N, C]`
//! after global pooling, logits) degrade to one 1×1 block per plane.

use crate::{Shape, Tensor, TensorError};

/// Edge length, in pixels, of one spatial dirty block.
///
/// Four is a compromise between mask resolution (a single faulted pixel
/// dirties at most 4 neighbouring blocks after one 3×3 conv) and mask
/// overhead (a 32×32 feature map costs 64 bits per plane).
pub const DIRTY_BLOCK: usize = 4;

/// A per-plane, per-spatial-block dirty-region mask over one activation
/// tensor.
///
/// "Dirty" means *may differ bitwise from the golden activation*; clean
/// blocks are guaranteed bit-golden. The mask is deliberately conservative:
/// marking a clean block dirty costs only recomputation, while the reverse
/// would be unsound.
///
/// # Example
///
/// ```
/// use sfi_tensor::{DirtyMask, Shape};
///
/// let mut mask = DirtyMask::for_shape(Shape::new(&[1, 2, 8, 8])).unwrap();
/// assert!(mask.is_empty());
/// mask.mark_pixel(1, 3, 7);
/// assert!(mask.block_is_dirty(1, 0, 1));
/// assert_eq!(mask.dirty_blocks(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtyMask {
    /// Number of `(image, channel)` planes (`N * C`).
    planes: usize,
    /// Spatial height in pixels (1 for rank-2 tensors).
    h: usize,
    /// Spatial width in pixels (1 for rank-2 tensors).
    w: usize,
    /// Blocks per column (`ceil(h / DIRTY_BLOCK)`).
    bh: usize,
    /// Blocks per row (`ceil(w / DIRTY_BLOCK)`).
    bw: usize,
    /// One bit per `(plane, block_y, block_x)`, packed little-endian.
    words: Vec<u64>,
    /// Cached population count of `words`.
    dirty: usize,
}

impl DirtyMask {
    /// An all-clean mask over `planes` feature maps of `h × w` pixels.
    pub fn clean(planes: usize, h: usize, w: usize) -> Self {
        let bh = h.div_ceil(DIRTY_BLOCK).max(1);
        let bw = w.div_ceil(DIRTY_BLOCK).max(1);
        let bits = planes * bh * bw;
        Self { planes, h, w, bh, bw, words: vec![0; bits.div_ceil(64)], dirty: 0 }
    }

    /// An all-clean mask matching `shape`: rank-4 `[N, C, H, W]` tensors get
    /// `N * C` planes of `H × W`; rank-2 `[N, C]` tensors get `N * C` planes
    /// of 1 × 1.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for other ranks.
    pub fn for_shape(shape: Shape) -> Result<Self, TensorError> {
        match shape.rank() {
            4 => Ok(Self::clean(shape.n() * shape.c(), shape.h(), shape.w())),
            2 => Ok(Self::clean(shape.dims()[0] * shape.dims()[1], 1, 1)),
            r => Err(TensorError::RankMismatch { op: "dirty_mask", expected: 4, actual: r }),
        }
    }

    /// An all-dirty mask matching `shape` — the saturated-cone
    /// representation: every block is conservatively dirty without any
    /// per-element scan.
    ///
    /// # Errors
    ///
    /// Same rank conditions as [`DirtyMask::for_shape`].
    pub fn full(shape: Shape) -> Result<Self, TensorError> {
        let mut mask = Self::for_shape(shape)?;
        let bits = mask.total_blocks();
        for (i, word) in mask.words.iter_mut().enumerate() {
            let remaining = bits - (i * 64).min(bits);
            *word = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
        mask.dirty = bits;
        Ok(mask)
    }

    /// A mask with exactly one dirty block: the block containing the flat
    /// `element` index of a tensor of `shape` — the seed of a transient
    /// activation fault's sparse cone.
    ///
    /// For rank-4 `[N, C, H, W]` tensors the element decomposes as
    /// `((n * C + c) * H + y) * W + x`; rank-2 tensors mark the element's
    /// own 1×1 plane.
    ///
    /// # Errors
    ///
    /// Same rank conditions as [`DirtyMask::for_shape`];
    /// [`TensorError::LengthMismatch`] when `element` is out of range.
    pub fn single_site(shape: Shape, element: usize) -> Result<Self, TensorError> {
        let mut mask = Self::for_shape(shape)?;
        let plane_len = mask.h * mask.w;
        let total = mask.planes * plane_len;
        if element >= total {
            return Err(TensorError::LengthMismatch { shape, len: element });
        }
        let plane = element / plane_len;
        let within = element % plane_len;
        mask.mark_pixel(plane, within / mask.w, within % mask.w);
        Ok(mask)
    }

    /// The mask of bitwise differences between `golden` and `value`: a block
    /// is dirty iff at least one of its elements differs in bits (NaN
    /// payloads and signed zeros included).
    ///
    /// # Errors
    ///
    /// Same rank conditions as [`DirtyMask::for_shape`]; the tensors must
    /// share `shape`'s length (guaranteed for tensors of that shape).
    pub fn from_bitdiff(shape: Shape, golden: &[f32], value: &[f32]) -> Result<Self, TensorError> {
        let mut mask = Self::for_shape(shape)?;
        mask.mark_bitdiff(golden, value);
        Ok(mask)
    }

    /// Number of `(image, channel)` planes.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Spatial height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Spatial width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Blocks per column.
    pub fn blocks_h(&self) -> usize {
        self.bh
    }

    /// Blocks per row.
    pub fn blocks_w(&self) -> usize {
        self.bw
    }

    /// Whether no block is dirty — the delta is empty and the tensor is
    /// provably bit-golden.
    pub fn is_empty(&self) -> bool {
        self.dirty == 0
    }

    /// Number of dirty blocks.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty
    }

    /// Total number of blocks (`planes * blocks_h * blocks_w`).
    pub fn total_blocks(&self) -> usize {
        self.planes * self.bh * self.bw
    }

    /// Dirty fraction in `[0, 1]`; 0 for an empty (zero-plane) mask.
    pub fn dirty_fraction(&self) -> f64 {
        let total = self.total_blocks();
        if total == 0 {
            0.0
        } else {
            self.dirty as f64 / total as f64
        }
    }

    fn bit(&self, plane: usize, by: usize, bx: usize) -> usize {
        debug_assert!(plane < self.planes && by < self.bh && bx < self.bw);
        (plane * self.bh + by) * self.bw + bx
    }

    /// Whether block `(by, bx)` of `plane` is dirty.
    pub fn block_is_dirty(&self, plane: usize, by: usize, bx: usize) -> bool {
        let bit = self.bit(plane, by, bx);
        self.words[bit / 64] >> (bit % 64) & 1 == 1
    }

    /// Marks block `(by, bx)` of `plane` dirty; idempotent.
    pub fn mark_block(&mut self, plane: usize, by: usize, bx: usize) {
        let bit = self.bit(plane, by, bx);
        let word = &mut self.words[bit / 64];
        let m = 1u64 << (bit % 64);
        if *word & m == 0 {
            *word |= m;
            self.dirty += 1;
        }
    }

    /// Marks the block containing pixel `(y, x)` of `plane` dirty.
    pub fn mark_pixel(&mut self, plane: usize, y: usize, x: usize) {
        self.mark_block(plane, y / DIRTY_BLOCK, x / DIRTY_BLOCK);
    }

    /// Marks every block of `plane` dirty.
    pub fn mark_plane(&mut self, plane: usize) {
        for by in 0..self.bh {
            for bx in 0..self.bw {
                self.mark_block(plane, by, bx);
            }
        }
    }

    /// Whether any block of `plane` is dirty.
    pub fn plane_is_dirty(&self, plane: usize) -> bool {
        (0..self.bh).any(|by| (0..self.bw).any(|bx| self.block_is_dirty(plane, by, bx)))
    }

    /// Whether any block in the (clipped) rectangle
    /// `[by0, by1) × [bx0, bx1)` of `plane` is dirty.
    pub fn any_in(&self, plane: usize, by0: usize, by1: usize, bx0: usize, bx1: usize) -> bool {
        let by1 = by1.min(self.bh);
        let bx1 = bx1.min(self.bw);
        (by0..by1).any(|by| (bx0..bx1).any(|bx| self.block_is_dirty(plane, by, bx)))
    }

    /// Pixel bounds `(y0, y1, x0, x1)` of block `(by, bx)`, clipped to the
    /// plane.
    pub fn block_pixels(&self, by: usize, bx: usize) -> (usize, usize, usize, usize) {
        let y0 = by * DIRTY_BLOCK;
        let x0 = bx * DIRTY_BLOCK;
        (y0, (y0 + DIRTY_BLOCK).min(self.h), x0, (x0 + DIRTY_BLOCK).min(self.w))
    }

    /// Unions `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics when the geometries differ — callers union masks of the same
    /// activation shape only (residual joins).
    pub fn union_with(&mut self, other: &DirtyMask) {
        assert_eq!(
            (self.planes, self.bh, self.bw),
            (other.planes, other.bh, other.bw),
            "dirty-mask union over mismatched geometries"
        );
        self.dirty = 0;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
            self.dirty += w.count_ones() as usize;
        }
    }

    /// Marks every block where `golden` and `value` differ bitwise.
    ///
    /// Both slices must have the tensor layout this mask was built for
    /// (`planes * h * w` contiguous elements); trailing elements beyond that
    /// length are ignored.
    pub fn mark_bitdiff(&mut self, golden: &[f32], value: &[f32]) {
        let plane_len = self.h * self.w;
        for p in 0..self.planes {
            let g = &golden[p * plane_len..][..plane_len];
            let v = &value[p * plane_len..][..plane_len];
            self.mark_plane_bitdiff(p, g, v);
        }
    }

    /// Marks every block of `plane` where the feature-map slices `golden`
    /// and `value` (both `h * w` elements) differ bitwise.
    pub fn mark_plane_bitdiff(&mut self, plane: usize, golden: &[f32], value: &[f32]) {
        for by in 0..self.bh {
            for bx in 0..self.bw {
                if self.block_is_dirty(plane, by, bx) {
                    continue;
                }
                let (y0, y1, x0, x1) = self.block_pixels(by, bx);
                let differs = (y0..y1).any(|y| {
                    let row = y * self.w;
                    golden[row + x0..row + x1]
                        .iter()
                        .zip(&value[row + x0..row + x1])
                        .any(|(a, b)| a.to_bits() != b.to_bits())
                });
                if differs {
                    self.mark_block(plane, by, bx);
                }
            }
        }
    }

    /// Whether this mask's geometry matches `tensor`'s shape under the
    /// [`DirtyMask::for_shape`] convention.
    pub fn matches(&self, tensor: &Tensor) -> bool {
        let shape = tensor.shape();
        match shape.rank() {
            4 => self.planes == shape.n() * shape.c() && self.h == shape.h() && self.w == shape.w(),
            2 => self.planes == shape.dims()[0] * shape.dims()[1] && self.h == 1 && self.w == 1,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_mask_is_empty() {
        let m = DirtyMask::clean(4, 8, 8);
        assert!(m.is_empty());
        assert_eq!(m.dirty_blocks(), 0);
        assert_eq!(m.total_blocks(), 4 * 2 * 2);
        assert_eq!(m.dirty_fraction(), 0.0);
    }

    #[test]
    fn for_shape_rank4_and_rank2() {
        let m4 = DirtyMask::for_shape(Shape::new(&[2, 3, 9, 5])).unwrap();
        assert_eq!(m4.planes(), 6);
        assert_eq!((m4.blocks_h(), m4.blocks_w()), (3, 2));
        let m2 = DirtyMask::for_shape(Shape::new(&[2, 10])).unwrap();
        assert_eq!(m2.planes(), 20);
        assert_eq!((m2.blocks_h(), m2.blocks_w()), (1, 1));
        assert!(DirtyMask::for_shape(Shape::new(&[3])).is_err());
    }

    #[test]
    fn mark_and_query_blocks() {
        let mut m = DirtyMask::clean(2, 8, 8);
        m.mark_pixel(1, 7, 0);
        assert!(m.block_is_dirty(1, 1, 0));
        assert!(!m.block_is_dirty(0, 1, 0));
        assert!(m.plane_is_dirty(1));
        assert!(!m.plane_is_dirty(0));
        m.mark_pixel(1, 7, 1); // same block: idempotent
        assert_eq!(m.dirty_blocks(), 1);
        m.mark_plane(0);
        assert_eq!(m.dirty_blocks(), 1 + 4);
    }

    #[test]
    fn any_in_clips_ranges() {
        let mut m = DirtyMask::clean(1, 8, 8);
        m.mark_block(0, 1, 1);
        assert!(m.any_in(0, 0, 99, 0, 99));
        assert!(m.any_in(0, 1, 2, 1, 2));
        assert!(!m.any_in(0, 0, 1, 0, 2));
        assert!(!m.any_in(0, 2, 1, 0, 2), "empty range is clean");
    }

    #[test]
    fn block_pixels_clip_to_plane() {
        let m = DirtyMask::clean(1, 6, 9);
        assert_eq!(m.block_pixels(0, 0), (0, 4, 0, 4));
        assert_eq!(m.block_pixels(1, 2), (4, 6, 8, 9));
    }

    #[test]
    fn union_accumulates() {
        let mut a = DirtyMask::clean(1, 8, 8);
        let mut b = DirtyMask::clean(1, 8, 8);
        a.mark_block(0, 0, 0);
        b.mark_block(0, 0, 0);
        b.mark_block(0, 1, 1);
        a.union_with(&b);
        assert_eq!(a.dirty_blocks(), 2);
        assert!(a.block_is_dirty(0, 1, 1));
    }

    #[test]
    #[should_panic(expected = "mismatched geometries")]
    fn union_rejects_mismatched_geometry() {
        let mut a = DirtyMask::clean(1, 8, 8);
        a.union_with(&DirtyMask::clean(2, 8, 8));
    }

    #[test]
    fn single_site_marks_one_block_rank4() {
        // Element ((0*2 + 1)*8 + 5)*8 + 6 → plane 1, pixel (5, 6) → block (1, 1).
        let m = DirtyMask::single_site(Shape::new(&[1, 2, 8, 8]), (8 + 5) * 8 + 6).unwrap();
        assert_eq!(m.dirty_blocks(), 1);
        assert!(m.block_is_dirty(1, 1, 1));
        assert!(!m.plane_is_dirty(0));
    }

    #[test]
    fn single_site_marks_one_plane_rank2() {
        let m = DirtyMask::single_site(Shape::new(&[2, 10]), 13).unwrap();
        assert_eq!(m.dirty_blocks(), 1);
        assert!(m.block_is_dirty(13, 0, 0));
    }

    #[test]
    fn single_site_rejects_out_of_range() {
        assert!(DirtyMask::single_site(Shape::new(&[1, 1, 4, 4]), 16).is_err());
        assert!(DirtyMask::single_site(Shape::new(&[1, 1, 4, 4]), 15).is_ok());
    }

    #[test]
    fn bitdiff_marks_only_differing_blocks() {
        let shape = Shape::new(&[1, 1, 8, 8]);
        let golden = vec![1.0f32; 64];
        let mut value = golden.clone();
        value[7] = 2.0 - 1.0; // same value, same bits: still clean
        let clean = DirtyMask::from_bitdiff(shape, &golden, &value).unwrap();
        assert!(clean.is_empty(), "value-equal bits stay clean");
        value[4 * 8 + 5] = f32::NAN;
        let m = DirtyMask::from_bitdiff(shape, &golden, &value).unwrap();
        assert_eq!(m.dirty_blocks(), 1);
        assert!(m.block_is_dirty(0, 1, 1));
    }

    #[test]
    fn bitdiff_distinguishes_nan_payloads_and_zero_signs() {
        let shape = Shape::new(&[1, 2]);
        let golden = [0.0f32, f32::from_bits(0x7fc0_0001)];
        let negz = [-0.0f32, f32::from_bits(0x7fc0_0001)];
        let m = DirtyMask::from_bitdiff(shape, &golden, &negz).unwrap();
        assert_eq!(m.dirty_blocks(), 1, "-0.0 differs from 0.0 in bits");
        let payload = [0.0f32, f32::from_bits(0x7fc0_0002)];
        let m2 = DirtyMask::from_bitdiff(shape, &golden, &payload).unwrap();
        assert_eq!(m2.dirty_blocks(), 1, "NaN payloads compare by bits");
    }

    #[test]
    fn matches_follows_for_shape_convention() {
        let t4 = Tensor::zeros([2, 3, 8, 8]);
        let m = DirtyMask::for_shape(t4.shape()).unwrap();
        assert!(m.matches(&t4));
        assert!(!m.matches(&Tensor::zeros([2, 3, 8, 4])));
        let t2 = Tensor::zeros([4, 10]);
        assert!(DirtyMask::for_shape(t2.shape()).unwrap().matches(&t2));
    }
}
