use std::fmt;

use crate::Shape;

/// Error type for every fallible operation in this crate.
///
/// All variants carry enough context to reconstruct which operand was at
/// fault; `Display` renders a single lowercase sentence per the API
/// guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Shape of the first operand.
        lhs: Shape,
        /// Shape of the second operand.
        rhs: Shape,
    },
    /// An operand had the wrong rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank it was given.
        actual: usize,
    },
    /// A configuration value (stride, group count, kernel size, …) was
    /// invalid for the given operands.
    InvalidConfig {
        /// Name of the operation that failed.
        op: &'static str,
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The data buffer length did not match the product of the dimensions.
    LengthMismatch {
        /// Shape that was requested.
        shape: Shape,
        /// Length of the provided buffer.
        len: usize,
    },
    /// An index was outside the tensor bounds.
    IndexOutOfBounds {
        /// Shape of the tensor being indexed.
        shape: Shape,
        /// The offending flat index.
        index: usize,
    },
    /// An empty tensor was passed where at least one element is required.
    Empty {
        /// Name of the operation that failed.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch between {lhs} and {rhs}")
            }
            TensorError::RankMismatch { op, expected, actual } => {
                write!(f, "{op}: expected rank {expected}, got rank {actual}")
            }
            TensorError::InvalidConfig { op, reason } => {
                write!(f, "{op}: invalid configuration: {reason}")
            }
            TensorError::LengthMismatch { shape, len } => {
                write!(
                    f,
                    "buffer of length {len} does not match shape {shape} ({} elements)",
                    shape.len()
                )
            }
            TensorError::IndexOutOfBounds { shape, index } => {
                write!(f, "index {index} out of bounds for shape {shape}")
            }
            TensorError::Empty { op } => write!(f, "{op}: tensor must not be empty"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::ShapeMismatch {
            op: "add",
            lhs: Shape::new(&[1, 2]),
            rhs: Shape::new(&[2, 1]),
        };
        let msg = err.to_string();
        assert!(msg.starts_with("add: shape mismatch"));
        assert!(msg.contains("[1, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn length_mismatch_reports_expected_elements() {
        let err = TensorError::LengthMismatch { shape: Shape::new(&[2, 3]), len: 5 };
        assert!(err.to_string().contains("6 elements"));
    }
}
