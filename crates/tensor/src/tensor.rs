use serde::{Deserialize, Serialize};

use crate::{Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// Feature maps follow the NCHW convention. The type is deliberately plain:
/// an owned `Vec<f32>` plus a [`Shape`], with validated constructors and
/// element accessors. All numeric operators live in [`crate::ops`].
///
/// # Example
///
/// ```
/// use sfi_tensor::Tensor;
///
/// # fn main() -> Result<(), sfi_tensor::TensorError> {
/// let t = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(t.get([1, 0]), Some(3.0));
/// assert_eq!(t.iter().sum::<f32>(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Self { data: vec![0.0; shape.len()], shape }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Self { data: vec![value; shape.len()], shape }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the number of elements implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { shape, len: data.len() });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.len()).map(&mut f).collect();
        Self { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index, or `None` when out of bounds.
    ///
    /// The index length must equal the tensor rank.
    pub fn get(&self, index: impl AsRef<[usize]>) -> Option<f32> {
        let flat = self.flatten_index(index.as_ref())?;
        self.data.get(flat).copied()
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index does not
    /// address an element (wrong rank or any coordinate out of range).
    pub fn set(&mut self, index: impl AsRef<[usize]>, value: f32) -> Result<(), TensorError> {
        match self.flatten_index(index.as_ref()) {
            Some(flat) => {
                self.data[flat] = value;
                Ok(())
            }
            None => Err(TensorError::IndexOutOfBounds { shape: self.shape, index: usize::MAX }),
        }
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// Returns `None` if the rank differs or any coordinate is out of range.
    pub fn flatten_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.shape.rank() {
            return None;
        }
        let dims = self.shape.dims();
        let mut flat = 0usize;
        for (&i, &d) in index.iter().zip(dims) {
            if i >= d {
                return None;
            }
            flat = flat * d + i;
        }
        Some(flat)
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, f32>> {
        self.data.iter().copied()
    }

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl FnMut(f32) -> f32) -> Self {
        Self { shape: self.shape, data: self.data.iter().copied().map(f).collect() }
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch { shape, len: self.data.len() });
        }
        Ok(Self { shape, data: self.data.clone() })
    }

    /// Index of the maximum element (ties broken towards the lower index).
    ///
    /// Returns `None` for an empty tensor. NaN elements are never selected
    /// unless every element is NaN, in which case index 0 is returned; this
    /// gives fault campaigns a deterministic "prediction" even when a fault
    /// propagates NaNs into the logits.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_val = f32::NEG_INFINITY;
        let mut seen_finite = false;
        for (i, &v) in self.data.iter().enumerate() {
            if !v.is_nan() && (v > best_val || !seen_finite) {
                best = i;
                best_val = v;
                seen_finite = true;
            }
        }
        Some(best)
    }

    /// Whether `other` holds the exact same shape and bit pattern.
    ///
    /// Elements are compared as raw `u32` bit images ([`f32::to_bits`]),
    /// short-circuiting on the first mismatch. This is *stricter* than
    /// `==` on floats: NaNs compare equal only when their payloads match,
    /// and `0.0` differs from `-0.0`. Bitwise equality of an activation
    /// therefore guarantees that any deterministic computation downstream
    /// of it produces bit-identical results — the soundness basis of the
    /// golden-convergence early exit.
    pub fn bits_equal(&self, other: &Tensor) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(&other.data).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape,
                rhs: other.shape,
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max))
    }
}

impl AsRef<[f32]> for Tensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.iter().all(|v| v == 0.0));
        let f = Tensor::full([2, 2], 1.5);
        assert!(f.iter().all(|v| v == 1.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![0.0; 4]).is_ok());
        let err = Tensor::from_vec([2, 2], vec![0.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { len: 5, .. }));
    }

    #[test]
    fn indexing_round_trip() {
        let t = Tensor::from_fn([2, 3, 4, 5], |i| i as f32);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..4 {
                    for w in 0..5 {
                        let flat = ((n * 3 + c) * 4 + h) * 5 + w;
                        assert_eq!(t.get([n, c, h, w]), Some(flat as f32));
                    }
                }
            }
        }
    }

    #[test]
    fn get_rejects_bad_rank_and_bounds() {
        let t = Tensor::zeros([2, 2]);
        assert_eq!(t.get([0]), None);
        assert_eq!(t.get([2, 0]), None);
        assert_eq!(t.get([0, 0, 0]), None);
    }

    #[test]
    fn set_writes_value() {
        let mut t = Tensor::zeros([2, 2]);
        t.set([1, 1], 7.0).unwrap();
        assert_eq!(t.get([1, 1]), Some(7.0));
        assert!(t.set([2, 0], 1.0).is_err());
    }

    #[test]
    fn argmax_basic() {
        let t = Tensor::from_vec([4], vec![0.1, 3.0, -2.0, 3.0]).unwrap();
        assert_eq!(t.argmax(), Some(1)); // tie broken towards lower index
    }

    #[test]
    fn argmax_skips_nan() {
        let t = Tensor::from_vec([3], vec![f32::NAN, 1.0, 0.5]).unwrap();
        assert_eq!(t.argmax(), Some(1));
    }

    #[test]
    fn argmax_all_nan_is_deterministic() {
        let t = Tensor::from_vec([2], vec![f32::NAN, f32::NAN]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn argmax_handles_neg_infinity_only() {
        let t = Tensor::from_vec([2], vec![f32::NEG_INFINITY, f32::NEG_INFINITY]).unwrap();
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 6], |i| i as f32);
        let r = t.reshape([3, 4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([5]).is_err());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([3], vec![1.5, 2.0, 1.0]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 2.0);
        let c = Tensor::zeros([2]);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn bits_equal_is_exact() {
        let a = Tensor::from_vec([3], vec![1.0, -0.0, 2.5]).unwrap();
        assert!(a.bits_equal(&a.clone()));
        // Plain float equality would accept 0.0 == -0.0; bits do not.
        let signed_zero = Tensor::from_vec([3], vec![1.0, 0.0, 2.5]).unwrap();
        assert!(!a.bits_equal(&signed_zero));
        // NaNs with the same payload are bit-equal even though NaN != NaN.
        let nan = Tensor::from_vec([2], vec![f32::NAN, 1.0]).unwrap();
        assert!(nan.bits_equal(&nan.clone()));
        let other_nan =
            Tensor::from_vec([2], vec![f32::from_bits(f32::NAN.to_bits() ^ 1), 1.0]).unwrap();
        assert!(!nan.bits_equal(&other_nan));
        // Shape participates in equality.
        let flat = Tensor::from_vec([3, 1], vec![1.0, -0.0, 2.5]).unwrap();
        assert!(!a.bits_equal(&flat));
    }

    #[test]
    fn map_applies_function() {
        let t = Tensor::from_vec([2], vec![1.0, -2.0]).unwrap();
        let m = t.map(f32::abs);
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
    }
}
