//! Internal graph-assembly helper shared by the topology builders.

use sfi_tensor::ops::Conv2dCfg;
use sfi_tensor::Tensor;

use crate::{Model, NnError, Node, NodeId, NodeOp, ParamKind, ParameterStore};

/// Incrementally assembles a [`Model`]: allocates parameters (zero-filled,
/// to be initialised by [`crate::init::initialize_seeded`]) and appends
/// nodes in topological order. Convolution and linear weights receive
/// consecutive *weight layer* indices in creation order, which is exactly
/// the paper's layer numbering.
pub(crate) struct GraphBuilder {
    nodes: Vec<Node>,
    store: ParameterStore,
    next_layer: usize,
}

impl GraphBuilder {
    pub(crate) fn new() -> Self {
        Self {
            nodes: vec![Node { op: NodeOp::Input, inputs: Vec::new() }],
            store: ParameterStore::new(),
            next_layer: 0,
        }
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Square convolution without bias (the paper's networks use BN).
    pub(crate) fn conv(
        &mut self,
        name: &str,
        input: NodeId,
        c_in: usize,
        c_out: usize,
        kernel: usize,
        cfg: Conv2dCfg,
    ) -> NodeId {
        let layer = self.next_layer;
        self.next_layer += 1;
        let weight = self.store.push(
            format!("{name}.weight"),
            ParamKind::Weight { layer },
            Tensor::zeros([c_out, c_in / cfg.groups, kernel, kernel]),
        );
        self.push_node(Node::unary(NodeOp::Conv { weight, bias: None, cfg }, input))
    }

    pub(crate) fn batch_norm(&mut self, name: &str, input: NodeId, channels: usize) -> NodeId {
        let gamma =
            self.store.push(format!("{name}.gamma"), ParamKind::BnGamma, Tensor::zeros([channels]));
        let beta =
            self.store.push(format!("{name}.beta"), ParamKind::BnBeta, Tensor::zeros([channels]));
        let mean =
            self.store.push(format!("{name}.mean"), ParamKind::BnMean, Tensor::zeros([channels]));
        let var =
            self.store.push(format!("{name}.var"), ParamKind::BnVar, Tensor::zeros([channels]));
        self.push_node(Node::unary(NodeOp::BatchNorm { gamma, beta, mean, var, eps: 1e-5 }, input))
    }

    pub(crate) fn relu(&mut self, input: NodeId) -> NodeId {
        self.push_node(Node::unary(NodeOp::Relu, input))
    }

    pub(crate) fn relu6(&mut self, input: NodeId) -> NodeId {
        self.push_node(Node::unary(NodeOp::Relu6, input))
    }

    pub(crate) fn add(&mut self, lhs: NodeId, rhs: NodeId) -> NodeId {
        self.push_node(Node::binary(NodeOp::Add, lhs, rhs))
    }

    pub(crate) fn downsample_pad(
        &mut self,
        input: NodeId,
        out_channels: usize,
        stride: usize,
    ) -> NodeId {
        self.push_node(Node::unary(NodeOp::DownsamplePad { out_channels, stride }, input))
    }

    pub(crate) fn max_pool(&mut self, input: NodeId, kernel: usize) -> NodeId {
        self.push_node(Node::unary(NodeOp::MaxPool { kernel }, input))
    }

    pub(crate) fn global_avg_pool(&mut self, input: NodeId) -> NodeId {
        self.push_node(Node::unary(NodeOp::GlobalAvgPool, input))
    }

    /// Fully-connected classifier head with bias.
    pub(crate) fn linear(
        &mut self,
        name: &str,
        input: NodeId,
        in_features: usize,
        out_features: usize,
    ) -> NodeId {
        let layer = self.next_layer;
        self.next_layer += 1;
        let weight = self.store.push(
            format!("{name}.weight"),
            ParamKind::Weight { layer },
            Tensor::zeros([out_features, in_features]),
        );
        let bias =
            self.store.push(format!("{name}.bias"), ParamKind::Bias, Tensor::zeros([out_features]));
        self.push_node(Node::unary(NodeOp::Linear { weight, bias: Some(bias) }, input))
    }

    pub(crate) fn finish(
        self,
        name: impl Into<String>,
        input_dims: Vec<usize>,
    ) -> Result<Model, NnError> {
        Model::new(name, self.nodes, self.store, input_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_consecutive_weight_layers() {
        let mut b = GraphBuilder::new();
        let c1 = b.conv("c1", 0, 3, 4, 3, Conv2dCfg::same(1));
        let r = b.relu(c1);
        let g = b.global_avg_pool(r);
        let _fc = b.linear("fc", g, 4, 10);
        let m = b.finish("t", vec![3, 8, 8]).unwrap();
        let layers = m.weight_layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].layer, 0);
        assert_eq!(layers[1].layer, 1);
        assert_eq!(layers[1].name, "fc.weight");
    }

    #[test]
    fn built_model_runs() {
        let mut b = GraphBuilder::new();
        let c = b.conv("c", 0, 1, 2, 3, Conv2dCfg::same(1));
        let n = b.batch_norm("bn", c, 2);
        let r = b.relu(n);
        let g = b.global_avg_pool(r);
        let _ = b.linear("fc", g, 2, 3);
        let mut m = b.finish("t", vec![1, 6, 6]).unwrap();
        crate::init::initialize_seeded(m.store_mut(), 1);
        let out = m.forward(&Tensor::full([1, 1, 6, 6], 0.5)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 3]);
    }
}
