use sfi_tensor::ops::Conv2dCfg;

use crate::ParamId;

/// Identifier of a node inside a [`Model`](crate::Model) graph (its
/// topological position).
pub type NodeId = usize;

/// One operator in the model graph.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NodeOp {
    /// The graph input placeholder. Exactly one per model, at position 0.
    Input,
    /// 2-D convolution with weight (and optional bias) parameters.
    Conv {
        /// Weight parameter (`[C_out, C_in/groups, K, K]`).
        weight: ParamId,
        /// Optional bias parameter (`[C_out]`).
        bias: Option<ParamId>,
        /// Stride / padding / groups configuration.
        cfg: Conv2dCfg,
    },
    /// Inference-mode batch normalisation.
    BatchNorm {
        /// Scale parameter `γ`.
        gamma: ParamId,
        /// Shift parameter `β`.
        beta: ParamId,
        /// Running mean `μ`.
        mean: ParamId,
        /// Running variance `σ²`.
        var: ParamId,
        /// Stability epsilon.
        eps: f32,
    },
    /// ReLU activation.
    Relu,
    /// ReLU6 activation (MobileNetV2).
    Relu6,
    /// Average pooling with square kernel and equal stride.
    AvgPool {
        /// Kernel (and stride) size.
        kernel: usize,
    },
    /// Max pooling with square kernel and equal stride (VGG-style nets).
    MaxPool {
        /// Kernel (and stride) size.
        kernel: usize,
    },
    /// Global average pooling producing a rank-2 `[N, C]` tensor.
    GlobalAvgPool,
    /// Fully-connected layer.
    Linear {
        /// Weight parameter (`[out_features, in_features]`).
        weight: ParamId,
        /// Optional bias parameter (`[out_features]`).
        bias: Option<ParamId>,
    },
    /// Element-wise addition of the two input nodes (residual join).
    Add,
    /// Parameter-free ResNet "option A" shortcut: spatial subsample by
    /// `stride` plus zero-padding of channels up to `out_channels`.
    DownsamplePad {
        /// Channel count after padding.
        out_channels: usize,
        /// Spatial subsampling stride.
        stride: usize,
    },
}

/// A graph node: an operator plus the ids of the nodes it consumes.
///
/// Input ids must be strictly smaller than the node's own id (the graph is
/// stored in topological order), which [`Model::new`](crate::Model::new)
/// verifies.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operator.
    pub op: NodeOp,
    /// Ids of the nodes whose outputs feed this operator.
    pub inputs: Vec<NodeId>,
}

impl Node {
    /// Convenience constructor for single-input nodes.
    pub fn unary(op: NodeOp, input: NodeId) -> Self {
        Self { op, inputs: vec![input] }
    }

    /// Convenience constructor for two-input nodes (residual joins).
    pub fn binary(op: NodeOp, lhs: NodeId, rhs: NodeId) -> Self {
        Self { op, inputs: vec![lhs, rhs] }
    }

    /// Parameter ids referenced by this node, in a fixed order.
    pub fn params(&self) -> Vec<ParamId> {
        match &self.op {
            NodeOp::Conv { weight, bias, .. } | NodeOp::Linear { weight, bias } => {
                let mut v = vec![*weight];
                if let Some(b) = bias {
                    v.push(*b);
                }
                v
            }
            NodeOp::BatchNorm { gamma, beta, mean, var, .. } => vec![*gamma, *beta, *mean, *var],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_and_binary_constructors() {
        let n = Node::unary(NodeOp::Relu, 3);
        assert_eq!(n.inputs, vec![3]);
        let b = Node::binary(NodeOp::Add, 1, 2);
        assert_eq!(b.inputs, vec![1, 2]);
    }

    #[test]
    fn params_of_conv_and_linear() {
        let conv =
            Node::unary(NodeOp::Conv { weight: 7, bias: Some(8), cfg: Conv2dCfg::same(1) }, 0);
        assert_eq!(conv.params(), vec![7, 8]);
        let lin = Node::unary(NodeOp::Linear { weight: 2, bias: None }, 0);
        assert_eq!(lin.params(), vec![2]);
    }

    #[test]
    fn params_of_batch_norm() {
        let bn =
            Node::unary(NodeOp::BatchNorm { gamma: 1, beta: 2, mean: 3, var: 4, eps: 1e-5 }, 0);
        assert_eq!(bn.params(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn activation_has_no_params() {
        assert!(Node::unary(NodeOp::Relu, 0).params().is_empty());
        assert!(Node::binary(NodeOp::Add, 0, 1).params().is_empty());
    }
}
