use serde::{Deserialize, Serialize};

use sfi_tensor::ops::{self, BatchNormParams, GemmKernel, LoweredConv};
use sfi_tensor::{ScratchArena, Tensor};

use crate::{NnError, Node, NodeId, ParamId, ParameterStore, WeightLayer};

/// Kernel and allocation policy of a forward pass.
///
/// The two policies are **bit-identical** — the register-tiled microkernel
/// dispatch preserves the naive kernel's per-output-element accumulation
/// order (see `sfi_tensor::ops::gemm_micro`) — so fault classifications
/// never depend on the choice; only speed does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelPolicy {
    /// Self-dispatching GEMM (register-tiled microkernels above the naive
    /// floor), by-reference input reads, and (when an arena is provided)
    /// recycled buffers.
    #[default]
    Fast,
    /// The historical reference path: naive GEMM, fresh allocations, and a
    /// defensive clone of every node input. Kept as the measurable
    /// pre-optimization baseline for benches and ablations.
    Naive,
}

/// Per-caller state threaded through the `*_with` forward variants.
///
/// The plain [`Model::forward`]-family methods use the defaults (fast
/// kernels, no arena, no pre-lowered panels).
#[derive(Default)]
pub struct ForwardOptions<'a> {
    /// Kernel and allocation policy.
    pub policy: KernelPolicy,
    /// Scratch arena for im2col/GEMM buffers; intermediate activations are
    /// recycled into it when the pass finishes.
    pub arena: Option<&'a mut ScratchArena>,
    /// Pre-lowered im2col panels for one conv node. Consulted only when
    /// that exact node is evaluated under [`KernelPolicy::Fast`]; the
    /// caller asserts the panels were lowered from the value the node's
    /// input holds during this pass.
    pub lowered: Option<(NodeId, &'a LoweredConv)>,
    /// Output unit (conv out-channel / linear out-feature) through which
    /// the active weight fault reaches the *first dirty* node, when the
    /// caller knows it (see [`Model::param_output_unit`]).
    /// [`Model::forward_from_converging`] then evaluates only that unit of
    /// the first dirty node — every other unit is a deterministic
    /// recomputation from golden inputs and unfaulted weight rows, hence
    /// bit-golden — deciding convergence (or materializing the node's full
    /// activation) at a fraction of the node cost. Ignored by the
    /// non-converging passes and by unsupported node kinds.
    pub dirty_unit: Option<usize>,
    /// Compiled execution plan for this model, when the caller holds one.
    /// [`Model::forward_from_converging`] reads tensor lifetime
    /// ([`CompiledPlan::last_reader`]) from it instead of recomputing the
    /// last-reader table per pass; the plan's global table agrees with the
    /// per-pass one on every suffix node (all readers of a suffix node are
    /// themselves suffix nodes).
    pub plan: Option<&'a crate::plan::CompiledPlan>,
}

/// Outcome of a convergence-checking incremental forward pass
/// ([`Model::forward_from_converging`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardOutcome {
    /// The suffix diverged from the golden activations all the way to the
    /// output; these are the recomputed logits.
    Logits(Tensor),
    /// Node `at_node`'s recomputed activation was **bit-identical** to the
    /// cached golden one, so every downstream tensor — logits included —
    /// is provably identical to the golden run and was not computed.
    Converged {
        /// The first recomputed node whose activation matched the cache
        /// bit-for-bit; nodes `at_node + 1 ..` were skipped.
        at_node: NodeId,
    },
}

/// Result of the single-unit convergence probe
/// ([`Model::forward_from_converging`] with
/// [`ForwardOptions::dirty_unit`] set).
enum ProbeOutcome {
    /// The node/op/options combination has no single-unit kernel; fall
    /// back to full evaluation.
    Unsupported,
    /// The probed unit recomputed to golden bits — the whole node is
    /// provably golden.
    Clean,
    /// The probed unit diverged; this is the node's full activation
    /// (golden clone with the unit overwritten).
    Dirty(Tensor),
}

/// Resolves node-output references during a forward pass: a clean prefix
/// (cached activations), at most one overridden node, a (usually empty)
/// list of additionally overridden nodes, and the recomputed suffix.
pub(crate) struct NodeValues<'a> {
    pub(crate) prefix: &'a [Tensor],
    pub(crate) over: Option<(NodeId, &'a Tensor)>,
    /// Patched activations for nodes that are *not* recomputed — the
    /// accumulated-fault path ([`Model::forward_from_patched`]) corrupts
    /// several prefix activations at once. Scanned linearly; campaigns
    /// carry at most a handful of entries.
    pub(crate) multi: &'a [(NodeId, Tensor)],
    pub(crate) suffix_base: usize,
    pub(crate) suffix: &'a [Tensor],
}

impl NodeValues<'_> {
    fn get(&self, id: NodeId) -> &Tensor {
        if let Some((n, t)) = self.over {
            if n == id {
                return t;
            }
        }
        if let Some((_, t)) = self.multi.iter().find(|(n, _)| *n == id) {
            return t;
        }
        if id >= self.suffix_base {
            &self.suffix[id - self.suffix_base]
        } else {
            &self.prefix[id]
        }
    }
}

/// One transient activation corruption, expressed as IEEE-754 bit masks
/// over a single flat element of one node's activation tensor.
///
/// The masks compose every supported single-bit fault model:
/// stuck-at-0 clears via `and_mask`, stuck-at-1 sets via `or_mask`,
/// bit-flips toggle via `xor_mask`. The application order is
/// `(bits & and_mask | or_mask) ^ xor_mask`.
///
/// # Example
///
/// ```
/// use sfi_nn::ActPatch;
///
/// // Flip bit 31 (the sign) of element 5 of node 2's activation.
/// let patch = ActPatch { xor_mask: 1 << 31, ..ActPatch::identity(2, 5) };
/// assert_eq!(patch.apply(1.0), -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActPatch {
    /// The struck node (0 = the input tensor itself).
    pub node: NodeId,
    /// Flat element index into the node's activation tensor.
    pub element: usize,
    /// Bits to keep (stuck-at-0 clears its target bit here).
    pub and_mask: u32,
    /// Bits to force on (stuck-at-1).
    pub or_mask: u32,
    /// Bits to toggle (bit-flips).
    pub xor_mask: u32,
}

impl ActPatch {
    /// A no-op patch at `(node, element)`; combine with mask overrides.
    pub fn identity(node: NodeId, element: usize) -> Self {
        Self { node, element, and_mask: !0, or_mask: 0, xor_mask: 0 }
    }

    /// Applies the masks to a raw IEEE-754 bit pattern.
    pub fn apply_bits(&self, bits: u32) -> u32 {
        (bits & self.and_mask | self.or_mask) ^ self.xor_mask
    }

    /// Applies the masks to a value, bit-exactly (NaN payloads preserved).
    pub fn apply(&self, v: f32) -> f32 {
        f32::from_bits(self.apply_bits(v.to_bits()))
    }

    /// Whether applying this patch to `v` leaves its bits unchanged — the
    /// fault is provably masked at its own site.
    pub fn is_noop_on(&self, v: f32) -> bool {
        self.apply_bits(v.to_bits()) == v.to_bits()
    }
}

/// Cached per-node activations of one input, produced by
/// [`Model::forward_cached`] and consumed by [`Model::forward_from`].
///
/// Fault campaigns keep one cache per evaluation image: a fault in weight
/// layer `l` leaves every node before `l`'s node untouched, so re-running
/// inference can start from the cached prefix.
#[derive(Debug, Clone)]
pub struct ActivationCache {
    activations: Vec<Tensor>,
}

impl ActivationCache {
    /// The cached output of node `id`.
    pub fn get(&self, id: NodeId) -> Option<&Tensor> {
        self.activations.get(id)
    }

    /// Number of cached node outputs.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.activations.len()
    }

    /// Approximate heap size of the cache in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.activations.iter().map(|t| t.len() * std::mem::size_of::<f32>()).sum()
    }

    /// All cached activations in node order (the compiled-plan engine
    /// resolves prefix reads against this slice directly).
    pub(crate) fn activations(&self) -> &[Tensor] {
        &self.activations
    }
}

/// A CNN as a topologically ordered operator graph plus its parameters.
///
/// Build models through the topology configs in [`crate::resnet`] and
/// [`crate::mobilenet`], or assemble graphs manually with [`Model::new`].
///
/// # Example
///
/// ```
/// use sfi_nn::resnet::ResNetConfig;
/// use sfi_tensor::Tensor;
///
/// # fn main() -> Result<(), sfi_nn::NnError> {
/// let model = ResNetConfig::resnet20().with_width(4).build_seeded(7)?;
/// let logits = model.forward(&Tensor::zeros([2, 3, 32, 32]))?;
/// assert_eq!(logits.shape().dims(), &[2, 10]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    nodes: Vec<Node>,
    store: ParameterStore,
    input_dims: Vec<usize>,
    /// For each node, the smallest node id it transitively influences is
    /// itself; for incremental re-execution we need, per parameter, the node
    /// that consumes it.
    param_node: Vec<Option<NodeId>>,
}

impl Model {
    /// Assembles a model from a topologically ordered node list.
    ///
    /// `input_dims` is the per-image input shape (e.g. `[3, 32, 32]`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] when node 0 is not the input
    /// placeholder, any node references a node at or after itself, or input
    /// arity does not match the operator; returns
    /// [`NnError::InvalidParameter`] when a referenced parameter id is out
    /// of range.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<Node>,
        store: ParameterStore,
        input_dims: Vec<usize>,
    ) -> Result<Self, NnError> {
        use crate::NodeOp;
        if nodes.is_empty() || !matches!(nodes[0].op, NodeOp::Input) {
            return Err(NnError::InvalidGraph {
                reason: "node 0 must be the Input placeholder".into(),
            });
        }
        let mut param_node: Vec<Option<NodeId>> = vec![None; store.len()];
        for (id, node) in nodes.iter().enumerate() {
            let arity = match node.op {
                NodeOp::Input => 0,
                NodeOp::Add => 2,
                _ => 1,
            };
            if node.inputs.len() != arity {
                return Err(NnError::InvalidGraph {
                    reason: format!("node {id} expects {arity} inputs, has {}", node.inputs.len()),
                });
            }
            for &inp in &node.inputs {
                if inp >= id {
                    return Err(NnError::InvalidGraph {
                        reason: format!("node {id} references non-preceding node {inp}"),
                    });
                }
            }
            for p in node.params() {
                if p >= store.len() {
                    return Err(NnError::InvalidParameter {
                        reason: format!("node {id} references unknown parameter {p}"),
                    });
                }
                if param_node[p].is_none() {
                    param_node[p] = Some(id);
                }
            }
        }
        Ok(Self { name: name.into(), nodes, store, input_dims, param_node })
    }

    /// The model's name (e.g. `"resnet20"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The graph nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The parameter store.
    pub fn store(&self) -> &ParameterStore {
        &self.store
    }

    /// Mutable access to the parameter store (used by fault injectors).
    pub fn store_mut(&mut self) -> &mut ParameterStore {
        &mut self.store
    }

    /// Per-image input dimensions (e.g. `[3, 32, 32]`).
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// The fault-injectable weight layers, in the paper's layer order.
    pub fn weight_layers(&self) -> Vec<WeightLayer> {
        self.store.weight_layers()
    }

    /// The node that consumes parameter `param`, when any does.
    pub fn node_of_param(&self, param: ParamId) -> Option<NodeId> {
        self.param_node.get(param).copied().flatten()
    }

    /// The output unit of the node consuming `param` that a fault at flat
    /// `index` within the parameter can reach — the leading-dimension slot
    /// in every parameter layout this graph uses: conv weights are
    /// `[c_out, c_in/g, k_h, k_w]`, linear weights `[out, in]`, and
    /// vector parameters (biases, batch-norm terms) are indexed by unit
    /// directly. Feed the result to [`ForwardOptions::dirty_unit`] to arm
    /// the single-unit convergence probe. `None` when the parameter is
    /// unknown or the index is out of range.
    pub fn param_output_unit(&self, param: ParamId, index: usize) -> Option<usize> {
        let tensor = &self.store.get(param)?.tensor;
        if index >= tensor.len() {
            return None;
        }
        let shape = tensor.shape();
        let per_unit: usize = shape.dims()[1..].iter().product();
        Some(index / per_unit)
    }

    fn check_input(&self, input: &Tensor) -> Result<(), NnError> {
        let dims = input.shape();
        let ok =
            dims.rank() == self.input_dims.len() + 1 && dims.dims()[1..] == self.input_dims[..];
        if ok {
            Ok(())
        } else {
            Err(NnError::InputShape {
                expected: self.input_dims.clone(),
                actual: dims.dims().to_vec(),
            })
        }
    }

    pub(crate) fn eval_node_with(
        &self,
        id: NodeId,
        vals: &NodeValues<'_>,
        opts: &mut ForwardOptions<'_>,
    ) -> Result<Tensor, NnError> {
        use crate::NodeOp;
        if opts.policy == KernelPolicy::Naive {
            return self.eval_node_naive(id, vals);
        }
        let node = &self.nodes[id];
        let param = |p: ParamId| &self.store.get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let x = |i: usize| vals.get(node.inputs[i]);
        let out = match &node.op {
            NodeOp::Input => unreachable!("input node is never re-evaluated"),
            NodeOp::Conv { weight, bias, cfg } => {
                let w = param(*weight);
                let b = bias.map(&param);
                match opts.lowered {
                    Some((n, low)) if n == id => {
                        ops::conv2d_from_lowered(low, w, b, opts.arena.as_deref_mut())
                            .map_err(wrap)?
                    }
                    _ => match opts.arena.as_deref_mut() {
                        Some(a) => ops::conv2d_with(x(0), w, b, *cfg, a).map_err(wrap)?,
                        None => ops::conv2d(x(0), w, b, *cfg).map_err(wrap)?,
                    },
                }
            }
            NodeOp::BatchNorm { gamma, beta, mean, var, eps } => {
                let params = BatchNormParams {
                    gamma: param(*gamma),
                    beta: param(*beta),
                    mean: param(*mean),
                    var: param(*var),
                    eps: *eps,
                };
                match opts.arena.as_deref_mut() {
                    Some(a) => ops::batch_norm_with(x(0), &params, a).map_err(wrap)?,
                    None => ops::batch_norm(x(0), &params).map_err(wrap)?,
                }
            }
            NodeOp::Relu => match opts.arena.as_deref_mut() {
                Some(a) => ops::relu_with(x(0), a),
                None => ops::relu(x(0)),
            },
            NodeOp::Relu6 => match opts.arena.as_deref_mut() {
                Some(a) => ops::relu6_with(x(0), a),
                None => ops::relu6(x(0)),
            },
            NodeOp::AvgPool { kernel } => ops::avg_pool2d(x(0), *kernel).map_err(wrap)?,
            NodeOp::MaxPool { kernel } => ops::max_pool2d(x(0), *kernel).map_err(wrap)?,
            NodeOp::GlobalAvgPool => ops::global_avg_pool(x(0)).map_err(wrap)?,
            NodeOp::Linear { weight, bias } => {
                let xv = x(0);
                let reshaped;
                let x2 = if xv.shape().rank() == 2 {
                    xv
                } else {
                    let n = xv.shape().dims()[0];
                    let rest = xv.len() / n;
                    reshaped = xv.reshape([n, rest]).map_err(wrap)?;
                    &reshaped
                };
                ops::linear(x2, param(*weight), bias.map(&param)).map_err(wrap)?
            }
            NodeOp::Add => match opts.arena.as_deref_mut() {
                Some(a) => ops::add_with(x(0), x(1), a).map_err(wrap)?,
                None => ops::add(x(0), x(1)).map_err(wrap)?,
            },
            NodeOp::DownsamplePad { out_channels, stride } => {
                ops::downsample_pad_channels(x(0), *out_channels, *stride).map_err(wrap)?
            }
        };
        Ok(out)
    }

    /// The historical evaluation path: clones every node input and uses the
    /// naive GEMM — the faithful pre-optimization cost model behind
    /// [`KernelPolicy::Naive`]. Bit-identical to the fast path.
    fn eval_node_naive(&self, id: NodeId, vals: &NodeValues<'_>) -> Result<Tensor, NnError> {
        use crate::NodeOp;
        let node = &self.nodes[id];
        let param = |p: ParamId| &self.store.get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let value_of = |i: NodeId| vals.get(i).clone();
        let out = match &node.op {
            NodeOp::Input => unreachable!("input node is never re-evaluated"),
            NodeOp::Conv { weight, bias, cfg } => {
                let x = value_of(node.inputs[0]);
                ops::conv2d_kernel(&x, param(*weight), bias.map(&param), *cfg, GemmKernel::Naive)
                    .map_err(wrap)?
            }
            NodeOp::BatchNorm { gamma, beta, mean, var, eps } => {
                let x = value_of(node.inputs[0]);
                let params = BatchNormParams {
                    gamma: param(*gamma),
                    beta: param(*beta),
                    mean: param(*mean),
                    var: param(*var),
                    eps: *eps,
                };
                ops::batch_norm(&x, &params).map_err(wrap)?
            }
            NodeOp::Relu => ops::relu(&value_of(node.inputs[0])),
            NodeOp::Relu6 => ops::relu6(&value_of(node.inputs[0])),
            NodeOp::AvgPool { kernel } => {
                ops::avg_pool2d(&value_of(node.inputs[0]), *kernel).map_err(wrap)?
            }
            NodeOp::MaxPool { kernel } => {
                ops::max_pool2d(&value_of(node.inputs[0]), *kernel).map_err(wrap)?
            }
            NodeOp::GlobalAvgPool => {
                ops::global_avg_pool(&value_of(node.inputs[0])).map_err(wrap)?
            }
            NodeOp::Linear { weight, bias } => {
                let x = value_of(node.inputs[0]);
                let x2 = if x.shape().rank() == 2 {
                    x
                } else {
                    let n = x.shape().dims()[0];
                    let rest = x.len() / n;
                    x.reshape([n, rest]).map_err(wrap)?
                };
                ops::linear(&x2, param(*weight), bias.map(&param)).map_err(wrap)?
            }
            NodeOp::Add => {
                let a = value_of(node.inputs[0]);
                let b = value_of(node.inputs[1]);
                ops::add(&a, &b).map_err(wrap)?
            }
            NodeOp::DownsamplePad { out_channels, stride } => {
                ops::downsample_pad_channels(&value_of(node.inputs[0]), *out_channels, *stride)
                    .map_err(wrap)?
            }
        };
        Ok(out)
    }

    /// Runs inference, returning the logits of the final node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InputShape`] for a mismatched input, or the first
    /// operator failure.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        self.forward_with(input, &mut ForwardOptions::default())
    }

    /// [`Model::forward`] with explicit [`ForwardOptions`] — the campaign
    /// hot path threads a per-worker [`ScratchArena`] through here so conv
    /// buffers and intermediate activations are recycled across faults.
    ///
    /// Bit-identical to [`Model::forward`] for every option combination.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward`].
    pub fn forward_with(
        &self,
        input: &Tensor,
        opts: &mut ForwardOptions<'_>,
    ) -> Result<Tensor, NnError> {
        self.check_input(input)?;
        let mut suffix: Vec<Tensor> = Vec::with_capacity(self.nodes.len().saturating_sub(1));
        for id in 1..self.nodes.len() {
            let v = self.eval_node_with(
                id,
                &NodeValues {
                    prefix: &[],
                    over: Some((0, input)),
                    multi: &[],
                    suffix_base: 1,
                    suffix: &suffix,
                },
                opts,
            )?;
            suffix.push(v);
        }
        let out = match suffix.pop() {
            Some(t) => t,
            None => input.clone(),
        };
        if let Some(arena) = opts.arena.as_deref_mut() {
            for t in suffix {
                arena.recycle(t.into_vec());
            }
        }
        Ok(out)
    }

    /// Runs inference and returns every node's activation, for later
    /// incremental re-execution with [`Model::forward_from`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward`].
    pub fn forward_cached(&self, input: &Tensor) -> Result<ActivationCache, NnError> {
        self.check_input(input)?;
        let mut values: Vec<Tensor> = Vec::with_capacity(self.nodes.len());
        values.push(input.clone());
        for id in 1..self.nodes.len() {
            let v = self.eval_node_with(
                id,
                &NodeValues {
                    prefix: &values,
                    over: None,
                    multi: &[],
                    suffix_base: usize::MAX,
                    suffix: &[],
                },
                &mut ForwardOptions::default(),
            )?;
            values.push(v);
        }
        Ok(ActivationCache { activations: values })
    }

    /// Re-runs inference assuming every node **before** `first_dirty` still
    /// has the activation recorded in `cache`.
    ///
    /// Nodes `>= first_dirty` are recomputed (reading cached values for
    /// earlier inputs); the final node's output is returned. With
    /// `first_dirty == 0` this degrades to a full forward pass over the
    /// cached input.
    ///
    /// This is sound for weight faults: a fault in the parameter consumed by
    /// node `d` cannot change any activation produced by nodes `< d` in a
    /// topologically ordered graph.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when the cache does not cover this
    /// model's node count, or the first operator failure.
    pub fn forward_from(
        &self,
        first_dirty: NodeId,
        cache: &ActivationCache,
    ) -> Result<Tensor, NnError> {
        self.forward_from_with(first_dirty, cache, &mut ForwardOptions::default())
    }

    /// [`Model::forward_from`] with explicit [`ForwardOptions`].
    ///
    /// When `opts.lowered` names the first dirty conv node, its im2col
    /// lowering is skipped entirely and the cached panels feed the GEMM —
    /// sound because incremental re-execution hands that node its *golden*
    /// input, the exact value the panels were lowered from.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward_from`].
    pub fn forward_from_with(
        &self,
        first_dirty: NodeId,
        cache: &ActivationCache,
        opts: &mut ForwardOptions<'_>,
    ) -> Result<Tensor, NnError> {
        if cache.activations.len() != self.nodes.len() {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "cache holds {} activations, model has {} nodes",
                    cache.activations.len(),
                    self.nodes.len()
                ),
            });
        }
        let first_dirty = first_dirty.max(1);
        if first_dirty >= self.nodes.len() {
            return Ok(cache.activations.last().expect("nonempty").clone());
        }
        // Recomputed suffix values, indexed by id - first_dirty.
        let mut fresh: Vec<Tensor> = Vec::with_capacity(self.nodes.len() - first_dirty);
        for id in first_dirty..self.nodes.len() {
            let v = self.eval_node_with(
                id,
                &NodeValues {
                    prefix: &cache.activations,
                    over: None,
                    multi: &[],
                    suffix_base: first_dirty,
                    suffix: &fresh,
                },
                opts,
            )?;
            fresh.push(v);
        }
        let out = fresh.pop().expect("suffix is nonempty");
        if let Some(arena) = opts.arena.as_deref_mut() {
            for t in fresh {
                arena.recycle(t.into_vec());
            }
        }
        Ok(out)
    }

    /// [`Model::forward_from_with`] with a golden-convergence early exit:
    /// after each recomputed node its activation is compared against the
    /// cached golden one with a bitwise (`u32`-reinterpreted) slice compare,
    /// and the pass stops with [`ForwardOutcome::Converged`] the moment they
    /// match.
    ///
    /// Soundness: every operator is deterministic and bit-exact in its
    /// inputs, so the skipped suffix is provably golden once **every
    /// activation it can still read** is bitwise-golden. That is stronger
    /// than "node `k` matches": with skip connections (ResNet's residual
    /// `Add`) a node after `k` may read a recomputed activation *before*
    /// `k` that still differs (a diverged conv whose following ReLU clamped
    /// back to golden). The pass therefore tracks the set of *live dirty*
    /// nodes — recomputed nodes that differ from golden and are read by at
    /// least one node past the current one — and declares convergence only
    /// when the current node matches and that set is empty. NaN payloads
    /// and signed zeros compare by bits, so no approximation is involved.
    ///
    /// The comparison short-circuits on the first differing element, which
    /// keeps the per-node overhead negligible for genuinely diverged
    /// activations; a converged pass recycles every intermediate tensor
    /// into `opts.arena`, so the next image's convergence checks reuse the
    /// same scratch.
    ///
    /// When [`ForwardOptions::dirty_unit`] names the one output unit the
    /// fault can reach, the first dirty node is decided by a *single-unit
    /// probe* — one GEMM row instead of the full layer — and on divergence
    /// its activation is materialized as a golden clone with that unit
    /// overwritten, which is bit-identical to full re-evaluation because
    /// no other unit of a conv/linear output depends on the faulted
    /// weight row.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward_from`].
    pub fn forward_from_converging(
        &self,
        first_dirty: NodeId,
        cache: &ActivationCache,
        opts: &mut ForwardOptions<'_>,
    ) -> Result<ForwardOutcome, NnError> {
        if cache.activations.len() != self.nodes.len() {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "cache holds {} activations, model has {} nodes",
                    cache.activations.len(),
                    self.nodes.len()
                ),
            });
        }
        let first_dirty = first_dirty.max(1);
        if first_dirty >= self.nodes.len() {
            return Ok(ForwardOutcome::Logits(cache.activations.last().expect("nonempty").clone()));
        }
        // For each node, the last node that reads its activation. A dirty
        // (differs-from-golden) recomputed node stays "live" — and blocks
        // convergence — until its last reader has been evaluated. A
        // compiled plan supplies the table precomputed; it agrees with the
        // per-pass computation on every index this pass consults (the
        // first dirty node and later — all their readers are themselves at
        // or after `first_dirty`).
        let computed_last_reader;
        let last_reader: &[NodeId] = match opts.plan {
            Some(plan) if plan.len() == self.nodes.len() => plan.last_reader(),
            _ => {
                let mut lr: Vec<NodeId> = (0..self.nodes.len()).collect();
                for (id, node) in self.nodes.iter().enumerate().skip(first_dirty) {
                    for &inp in &node.inputs {
                        lr[inp] = id;
                    }
                }
                computed_last_reader = lr;
                &computed_last_reader
            }
        };
        // expiring[id] = how many live dirty nodes die once node `id` has
        // consumed them for the last time.
        let mut expiring: Vec<u32> = vec![0; self.nodes.len()];
        let mut live_dirty: u32 = 0;
        let mut fresh: Vec<Tensor> = Vec::with_capacity(self.nodes.len() - first_dirty);
        let mut start = first_dirty;
        // Single-unit probe of the first dirty node: when the caller names
        // the one output unit the fault can reach, evaluating just that
        // unit decides the whole node — the rest of its activation is a
        // deterministic recomputation from golden inputs and unfaulted
        // weight rows, hence bit-golden.
        if let Some(unit) = opts.dirty_unit {
            match self.probe_dirty_unit(first_dirty, cache, unit, opts)? {
                ProbeOutcome::Unsupported => {}
                ProbeOutcome::Clean => {
                    return Ok(ForwardOutcome::Converged { at_node: first_dirty });
                }
                ProbeOutcome::Dirty(t) => {
                    if last_reader[first_dirty] > first_dirty {
                        expiring[last_reader[first_dirty]] += 1;
                        live_dirty += 1;
                    }
                    fresh.push(t);
                    start = first_dirty + 1;
                }
            }
        }
        for id in start..self.nodes.len() {
            let v = self.eval_node_with(
                id,
                &NodeValues {
                    prefix: &cache.activations,
                    over: None,
                    multi: &[],
                    suffix_base: first_dirty,
                    suffix: &fresh,
                },
                opts,
            )?;
            // Node `id` has now read its inputs; dirty nodes last read here
            // can no longer influence the suffix.
            live_dirty -= expiring[id];
            if v.bits_equal(&cache.activations[id]) {
                if live_dirty == 0 {
                    if let Some(arena) = opts.arena.as_deref_mut() {
                        arena.recycle(v.into_vec());
                        for t in fresh {
                            arena.recycle(t.into_vec());
                        }
                    }
                    return Ok(ForwardOutcome::Converged { at_node: id });
                }
            } else if last_reader[id] > id {
                expiring[last_reader[id]] += 1;
                live_dirty += 1;
            }
            fresh.push(v);
        }
        let out = fresh.pop().expect("suffix is nonempty");
        if let Some(arena) = opts.arena.as_deref_mut() {
            for t in fresh {
                arena.recycle(t.into_vec());
            }
        }
        Ok(ForwardOutcome::Logits(out))
    }

    /// Evaluates only output unit `unit` of node `id` and compares it
    /// against the golden activation: `Clean` means the unit — and hence
    /// the whole node, since the fault reaches no other unit — recomputed
    /// to golden bits; `Dirty` carries the node's full activation (a golden
    /// clone with the probed unit overwritten, bit-identical to a full
    /// re-evaluation). `Unsupported` asks the caller to fall back to full
    /// evaluation: the op has no single-unit kernel, the conv has no
    /// cached lowering, or the naive cost-model policy is active.
    fn probe_dirty_unit(
        &self,
        id: NodeId,
        cache: &ActivationCache,
        unit: usize,
        opts: &mut ForwardOptions<'_>,
    ) -> Result<ProbeOutcome, NnError> {
        use crate::NodeOp;
        if opts.policy == KernelPolicy::Naive {
            return Ok(ProbeOutcome::Unsupported);
        }
        let node = &self.nodes[id];
        let param = |p: ParamId| &self.store.get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let golden = &cache.activations[id];
        let vals: Vec<f32> = match &node.op {
            NodeOp::Conv { weight, bias, .. } => {
                let Some((ln, low)) = opts.lowered else { return Ok(ProbeOutcome::Unsupported) };
                let w = param(*weight);
                if ln != id || unit >= w.shape().n() {
                    return Ok(ProbeOutcome::Unsupported);
                }
                ops::conv2d_channel_from_lowered(
                    low,
                    w,
                    bias.map(&param),
                    unit,
                    opts.arena.as_deref_mut(),
                )
                .map_err(wrap)?
            }
            NodeOp::Linear { weight, bias } => {
                let xv = &cache.activations[node.inputs[0]];
                let reshaped;
                let x2 = if xv.shape().rank() == 2 {
                    xv
                } else {
                    let n = xv.shape().dims()[0];
                    let rest = xv.len() / n;
                    reshaped = xv.reshape([n, rest]).map_err(wrap)?;
                    &reshaped
                };
                let w = param(*weight);
                if unit >= w.shape().dims()[0] {
                    return Ok(ProbeOutcome::Unsupported);
                }
                ops::linear_row(x2, w, bias.map(&param), unit).map_err(wrap)?
            }
            _ => return Ok(ProbeOutcome::Unsupported),
        };
        // Unit `unit` occupies `chunk` contiguous elements per image in the
        // golden layout ([batch, units, ...]); `vals` holds the same
        // elements back to back, one image after another.
        let shape = golden.shape();
        let dims = shape.dims();
        let (batch, units) = (dims[0], dims[1]);
        let chunk: usize = dims[2..].iter().product();
        let g = golden.as_slice();
        let clean = (0..batch).all(|n| {
            let gs = &g[(n * units + unit) * chunk..][..chunk];
            let vs = &vals[n * chunk..][..chunk];
            gs.iter().zip(vs).all(|(a, b)| a.to_bits() == b.to_bits())
        });
        if clean {
            if let Some(a) = opts.arena.as_deref_mut() {
                a.recycle(vals);
            }
            return Ok(ProbeOutcome::Clean);
        }
        let mut data = match opts.arena.as_deref_mut() {
            Some(a) => a.take(g.len()),
            None => vec![0.0f32; g.len()],
        };
        data.copy_from_slice(g);
        for n in 0..batch {
            data[(n * units + unit) * chunk..][..chunk]
                .copy_from_slice(&vals[n * chunk..][..chunk]);
        }
        if let Some(a) = opts.arena.as_deref_mut() {
            a.recycle(vals);
        }
        let t = Tensor::from_vec(shape, data)
            .expect("materialized activation matches the golden shape");
        Ok(ProbeOutcome::Dirty(t))
    }

    /// Re-runs inference with node `node`'s cached activation replaced by
    /// `patch(cached)` — the primitive behind *transient activation fault*
    /// campaigns: a soft error strikes a feature map during one inference,
    /// so the clean prefix up to (and including) the struck node is reused
    /// from the golden cache and only the suffix is recomputed.
    ///
    /// With `node == 0` the patch applies to the input image itself.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when the cache does not cover
    /// this model's nodes or `node` is out of range, or the first operator
    /// failure.
    pub fn forward_patched(
        &self,
        node: NodeId,
        cache: &ActivationCache,
        patch: impl FnOnce(&mut Tensor),
    ) -> Result<Tensor, NnError> {
        self.forward_patched_with(node, cache, patch, &mut ForwardOptions::default())
    }

    /// [`Model::forward_patched`] with explicit [`ForwardOptions`]
    /// (`opts.lowered` is ignored here: a patched activation invalidates
    /// any panels lowered downstream of it).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward_patched`].
    pub fn forward_patched_with(
        &self,
        node: NodeId,
        cache: &ActivationCache,
        patch: impl FnOnce(&mut Tensor),
        opts: &mut ForwardOptions<'_>,
    ) -> Result<Tensor, NnError> {
        if cache.activations.len() != self.nodes.len() {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "cache holds {} activations, model has {} nodes",
                    cache.activations.len(),
                    self.nodes.len()
                ),
            });
        }
        if node >= self.nodes.len() {
            return Err(NnError::CacheMismatch {
                reason: format!("node {node} out of range ({} nodes)", self.nodes.len()),
            });
        }
        let mut patched = cache.activations[node].clone();
        patch(&mut patched);
        if node + 1 == self.nodes.len() {
            return Ok(patched);
        }
        // A patched value makes pre-lowered panels unsound; drop them.
        let lowered = opts.lowered.take();
        // Recompute the suffix, reading the patched value for `node` and
        // cached values for everything else before it.
        let mut fresh: Vec<Tensor> = Vec::with_capacity(self.nodes.len() - node - 1);
        for id in node + 1..self.nodes.len() {
            let v = self.eval_node_with(
                id,
                &NodeValues {
                    prefix: &cache.activations,
                    over: Some((node, &patched)),
                    multi: &[],
                    suffix_base: node + 1,
                    suffix: &fresh,
                },
                opts,
            )?;
            fresh.push(v);
        }
        opts.lowered = lowered;
        let out = fresh.pop().expect("suffix is nonempty");
        if let Some(arena) = opts.arena.as_deref_mut() {
            for t in fresh {
                arena.recycle(t.into_vec());
            }
        }
        Ok(out)
    }

    /// Accumulated-fault inference: re-runs from the earliest corrupted
    /// value with any number of transient activation patches applied on top
    /// of an (optional) weight fault already injected into the parameters.
    ///
    /// `weight_dirty` names the first node whose *recomputation* differs
    /// (the faulted weight's node), exactly as in [`Model::forward_from`];
    /// `None` means the parameters are golden. Each [`ActPatch`] corrupts
    /// one element of one node's activation *as produced during this faulty
    /// inference*: a patch on a node upstream of the recomputation start
    /// applies to the cached golden activation, a patch on a recomputed
    /// node applies to the freshly computed (possibly already faulty)
    /// value. Patches never feed pre-lowered conv panels
    /// (`opts.lowered` is ignored whenever `patches` is nonempty).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when the cache does not cover
    /// this model's nodes or a patch site is out of range, or the first
    /// operator failure.
    pub fn forward_from_patched(
        &self,
        weight_dirty: Option<NodeId>,
        cache: &ActivationCache,
        patches: &[ActPatch],
        opts: &mut ForwardOptions<'_>,
    ) -> Result<Tensor, NnError> {
        let n_nodes = self.nodes.len();
        if cache.activations.len() != n_nodes {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "cache holds {} activations, model has {n_nodes} nodes",
                    cache.activations.len()
                ),
            });
        }
        for p in patches {
            if p.node >= n_nodes {
                return Err(NnError::CacheMismatch {
                    reason: format!("patch names node {}, model has {n_nodes} nodes", p.node),
                });
            }
            let len = cache.activations[p.node].len();
            if p.element >= len {
                return Err(NnError::CacheMismatch {
                    reason: format!(
                        "patch element {} out of range for node {} ({len} elements)",
                        p.element, p.node
                    ),
                });
            }
        }
        // Recomputation starts at the earliest node whose value can change:
        // the weight fault's node, or the node right after the earliest
        // patched activation (the patched node itself is not recomputed —
        // the corruption strikes its produced value).
        let min_patch = patches.iter().map(|p| p.node).min();
        let start = match (weight_dirty, min_patch) {
            (None, None) => return Ok(cache.activations.last().expect("nonempty").clone()),
            (Some(w), None) => w.max(1),
            (None, Some(p)) => p + 1,
            (Some(w), Some(p)) => w.max(1).min(p + 1),
        }
        .min(n_nodes);
        // Patched golden activations for nodes before the recomputation
        // start; patches at or past it apply to recomputed values below.
        let mut overrides: Vec<(NodeId, Tensor)> = Vec::new();
        for p in patches.iter().filter(|p| p.node < start) {
            let t = match overrides.iter_mut().find(|(n, _)| *n == p.node) {
                Some((_, t)) => t,
                None => {
                    overrides.push((p.node, cache.activations[p.node].clone()));
                    &mut overrides.last_mut().expect("just pushed").1
                }
            };
            let s = t.as_mut_slice();
            s[p.element] = p.apply(s[p.element]);
        }
        if start >= n_nodes {
            // Only the final node was struck; its patched value is the output.
            return Ok(match overrides.into_iter().find(|(n, _)| *n == n_nodes - 1) {
                Some((_, t)) => t,
                None => cache.activations.last().expect("nonempty").clone(),
            });
        }
        // A corrupted activation upstream of a lowered conv makes the
        // cached panels unsound; keep them only for pure weight faults.
        let lowered = if patches.is_empty() { None } else { opts.lowered.take() };
        let mut fresh: Vec<Tensor> = Vec::with_capacity(n_nodes - start);
        for id in start..n_nodes {
            let mut v = self.eval_node_with(
                id,
                &NodeValues {
                    prefix: &cache.activations,
                    over: None,
                    multi: &overrides,
                    suffix_base: start,
                    suffix: &fresh,
                },
                opts,
            )?;
            for p in patches.iter().filter(|p| p.node == id) {
                let s = v.as_mut_slice();
                s[p.element] = p.apply(s[p.element]);
            }
            fresh.push(v);
        }
        if lowered.is_some() {
            opts.lowered = lowered;
        }
        let out = fresh.pop().expect("suffix is nonempty");
        if let Some(arena) = opts.arena.as_deref_mut() {
            for t in fresh {
                arena.recycle(t.into_vec());
            }
        }
        Ok(out)
    }

    /// A human-readable summary: one line per weight layer with its name,
    /// shape, and parameter count, plus totals.
    ///
    /// # Example
    ///
    /// ```
    /// use sfi_nn::resnet::ResNetConfig;
    ///
    /// # fn main() -> Result<(), sfi_nn::NnError> {
    /// let model = ResNetConfig::resnet20().build()?;
    /// let summary = model.summary();
    /// assert!(summary.contains("resnet20"));
    /// assert!(summary.contains("268336 weights"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} ({} nodes)", self.name, self.nodes.len());
        for layer in self.weight_layers() {
            let param = self.store.get(layer.param).expect("layer param exists");
            let _ = writeln!(
                out,
                "  L{:<3} {:<28} {:<16} {:>9}",
                layer.layer,
                layer.name,
                param.tensor.shape().to_string(),
                layer.len
            );
        }
        let _ = writeln!(
            out,
            "  total: {} weights across {} layers ({} parameters incl. aux)",
            self.store.total_weights(),
            self.weight_layers().len(),
            self.store.iter().map(|p| p.tensor.len()).sum::<usize>()
        );
        out
    }

    /// Per-weight-layer summary statistics of the golden weights:
    /// `(layer, mean, std, min, max)` — the inputs a reliability engineer
    /// inspects before trusting the data-aware prior.
    pub fn weight_stats(&self) -> Vec<LayerStats> {
        self.weight_layers()
            .iter()
            .map(|l| {
                let w = self.store.get(l.param).expect("layer param exists").tensor.as_slice();
                let n = w.len() as f64;
                let mean = w.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
                let var = w.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / n;
                LayerStats {
                    layer: l.layer,
                    mean,
                    std: var.sqrt(),
                    min: w.iter().copied().fold(f32::INFINITY, f32::min),
                    max: w.iter().copied().fold(f32::NEG_INFINITY, f32::max),
                }
            })
            .collect()
    }

    /// Top-1 class indices for a batch of inputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward`].
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>, NnError> {
        let logits = self.forward(input)?;
        let batch = logits.shape().dims()[0];
        let classes = logits.shape().dims()[1];
        let data = logits.as_slice();
        Ok((0..batch)
            .map(|b| {
                let row = &data[b * classes..(b + 1) * classes];
                argmax_slice(row)
            })
            .collect())
    }
}

/// Summary statistics of one weight layer's golden values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerStats {
    /// The paper's 0-based layer index.
    pub layer: usize,
    /// Mean weight value.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Minimum weight.
    pub min: f32,
    /// Maximum weight.
    pub max: f32,
}

/// Index of the maximum element, NaN-aware (see [`Tensor::argmax`]).
pub(crate) fn argmax_slice(row: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_val = f32::NEG_INFINITY;
    let mut seen_finite = false;
    for (i, &v) in row.iter().enumerate() {
        if !v.is_nan() && (v > best_val || !seen_finite) {
            best = i;
            best_val = v;
            seen_finite = true;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeOp, ParamKind};
    use sfi_tensor::ops::Conv2dCfg;

    /// A tiny two-layer model: conv(1->2, 3x3) -> relu -> gap -> linear.
    fn tiny_model() -> Model {
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 9.0) * 0.1),
        );
        let w1 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([3, 2], |i| (i as f32 - 3.0) * 0.5),
        );
        let b1 = store.push("fc.bias", ParamKind::Bias, Tensor::from_fn([3], |i| i as f32 * 0.1));
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::unary(NodeOp::GlobalAvgPool, 2),
            Node::unary(NodeOp::Linear { weight: w1, bias: Some(b1) }, 3),
        ];
        Model::new("tiny", nodes, store, vec![1, 4, 4]).unwrap()
    }

    fn tiny_input() -> Tensor {
        Tensor::from_fn([1, 1, 4, 4], |i| (i as f32).sin())
    }

    #[test]
    fn forward_produces_logits() {
        let m = tiny_model();
        let out = m.forward(&tiny_input()).unwrap();
        assert_eq!(out.shape().dims(), &[1, 3]);
        assert!(out.iter().all(f32::is_finite));
    }

    #[test]
    fn forward_rejects_wrong_input_shape() {
        let m = tiny_model();
        assert!(matches!(m.forward(&Tensor::zeros([1, 2, 4, 4])), Err(NnError::InputShape { .. })));
        assert!(m.forward(&Tensor::zeros([1, 4, 4])).is_err());
    }

    #[test]
    fn cached_forward_matches_plain() {
        let m = tiny_model();
        let input = tiny_input();
        let plain = m.forward(&input).unwrap();
        let cache = m.forward_cached(&input).unwrap();
        let last = cache.get(cache.len() - 1).unwrap();
        assert_eq!(plain, *last);
    }

    #[test]
    fn forward_from_zero_matches_full() {
        let m = tiny_model();
        let input = tiny_input();
        let cache = m.forward_cached(&input).unwrap();
        let out = m.forward_from(0, &cache).unwrap();
        assert_eq!(out, m.forward(&input).unwrap());
    }

    #[test]
    fn forward_from_detects_weight_change() {
        let mut m = tiny_model();
        let input = tiny_input();
        let cache = m.forward_cached(&input).unwrap();
        let golden = m.forward(&input).unwrap();
        // Corrupt the fc weight; only node 4 is dirty.
        let fc = m.node_of_param(1).unwrap();
        assert_eq!(fc, 4);
        m.store_mut().get_mut(1).unwrap().tensor.as_mut_slice()[0] += 100.0;
        let faulty = m.forward_from(fc, &cache).unwrap();
        assert!(golden.max_abs_diff(&faulty).unwrap() > 1.0);
        // And the cached prefix is genuinely reused: recompute-from-conv
        // gives the same answer.
        let full = m.forward(&input).unwrap();
        assert!(full.max_abs_diff(&faulty).unwrap() < 1e-6);
    }

    #[test]
    fn forward_from_past_end_returns_cached_output() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let out = m.forward_from(999, &cache).unwrap();
        assert_eq!(out, *cache.get(cache.len() - 1).unwrap());
    }

    #[test]
    fn forward_from_rejects_foreign_cache() {
        let m = tiny_model();
        let cache = ActivationCache { activations: vec![Tensor::zeros([1])] };
        assert!(matches!(m.forward_from(1, &cache), Err(NnError::CacheMismatch { .. })));
    }

    #[test]
    fn graph_validation_rejects_forward_references() {
        let store = ParameterStore::new();
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Relu, 1), // self-reference
        ];
        assert!(Model::new("bad", nodes, store, vec![1, 2, 2]).is_err());
    }

    #[test]
    fn graph_validation_rejects_missing_input_node() {
        let store = ParameterStore::new();
        let nodes = vec![Node::unary(NodeOp::Relu, 0)];
        assert!(Model::new("bad", nodes, store, vec![1]).is_err());
    }

    #[test]
    fn graph_validation_rejects_bad_arity() {
        let store = ParameterStore::new();
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node { op: NodeOp::Add, inputs: vec![0] },
        ];
        assert!(Model::new("bad", nodes, store, vec![1]).is_err());
    }

    #[test]
    fn graph_validation_rejects_unknown_param() {
        let store = ParameterStore::new();
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Linear { weight: 5, bias: None }, 0),
        ];
        assert!(matches!(
            Model::new("bad", nodes, store, vec![1]),
            Err(NnError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn predict_returns_argmax_per_image() {
        let m = tiny_model();
        let batch = Tensor::from_fn([2, 1, 4, 4], |i| ((i * 7) % 11) as f32 * 0.1);
        let preds = m.predict(&batch).unwrap();
        assert_eq!(preds.len(), 2);
        assert!(preds.iter().all(|&p| p < 3));
    }

    #[test]
    fn argmax_slice_nan_aware() {
        assert_eq!(argmax_slice(&[f32::NAN, 2.0, 1.0]), 1);
        assert_eq!(argmax_slice(&[f32::NAN, f32::NAN]), 0);
        assert_eq!(argmax_slice(&[1.0, 3.0, 3.0]), 1);
    }

    #[test]
    fn forward_patched_identity_matches_cached_output() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let out = m.forward_patched(2, &cache, |_| {}).unwrap();
        assert_eq!(out, *cache.get(cache.len() - 1).unwrap());
    }

    #[test]
    fn forward_patched_at_input_matches_full_forward() {
        let m = tiny_model();
        let input = tiny_input();
        let cache = m.forward_cached(&input).unwrap();
        // Patch the input: zero one pixel; compare against a plain forward
        // on the same modified image.
        let mut modified = input.clone();
        modified.as_mut_slice()[5] = 0.0;
        let patched = m.forward_patched(0, &cache, |t| t.as_mut_slice()[5] = 0.0).unwrap();
        let direct = m.forward(&modified).unwrap();
        assert!(patched.max_abs_diff(&direct).unwrap() < 1e-6);
    }

    #[test]
    fn forward_patched_at_last_node_returns_patched_logits() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let last = m.nodes().len() - 1;
        let out = m.forward_patched(last, &cache, |t| t.as_mut_slice()[0] = 99.0).unwrap();
        assert_eq!(out.as_slice()[0], 99.0);
    }

    #[test]
    fn forward_patched_propagates_corruption() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let golden = cache.get(cache.len() - 1).unwrap().clone();
        let corrupted = m
            .forward_patched(1, &cache, |t| {
                for v in t.as_mut_slice() {
                    *v += 10.0;
                }
            })
            .unwrap();
        assert!(golden.max_abs_diff(&corrupted).unwrap() > 0.1);
    }

    #[test]
    fn forward_patched_rejects_bad_node_and_cache() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        assert!(m.forward_patched(99, &cache, |_| {}).is_err());
        let foreign = ActivationCache { activations: vec![Tensor::zeros([1])] };
        assert!(m.forward_patched(1, &foreign, |_| {}).is_err());
    }

    #[test]
    fn forward_from_patched_matches_sequential_patches() {
        let m = tiny_model();
        let input = tiny_input();
        let cache = m.forward_cached(&input).unwrap();
        // Two activation strikes on different nodes: the accumulated path
        // must match patching the input and node-2 value by hand.
        let p0 = ActPatch { xor_mask: 1 << 30, ..ActPatch::identity(0, 3) };
        let p2 = ActPatch { or_mask: 1 << 31, ..ActPatch::identity(2, 5) };
        let out = m
            .forward_from_patched(None, &cache, &[p0, p2], &mut ForwardOptions::default())
            .unwrap();
        // Reference: recompute by hand with a patched input cache, patching
        // node 2's produced value mid-flight via forward_cached on the
        // patched input then forward_patched at node 2.
        let mut modified = input.clone();
        let s = modified.as_mut_slice();
        s[3] = p0.apply(s[3]);
        let faulty_cache = m.forward_cached(&modified).unwrap();
        let direct = m
            .forward_patched(2, &faulty_cache, |t| {
                let s = t.as_mut_slice();
                s[5] = p2.apply(s[5]);
            })
            .unwrap();
        assert!(
            out.as_slice().iter().zip(direct.as_slice()).all(|(a, b)| a.to_bits() == b.to_bits()),
            "accumulated patches diverge from sequential application"
        );
    }

    #[test]
    fn forward_from_patched_without_faults_returns_golden() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let out =
            m.forward_from_patched(None, &cache, &[], &mut ForwardOptions::default()).unwrap();
        assert!(out.bits_equal(cache.get(cache.len() - 1).unwrap()));
    }

    #[test]
    fn forward_from_patched_single_patch_matches_forward_patched() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        for node in 0..cache.len() {
            let patch = ActPatch { xor_mask: 1 << 22, ..ActPatch::identity(node, 1) };
            let acc = m
                .forward_from_patched(None, &cache, &[patch], &mut ForwardOptions::default())
                .unwrap();
            let single = m
                .forward_patched(node, &cache, |t| {
                    let s = t.as_mut_slice();
                    s[1] = patch.apply(s[1]);
                })
                .unwrap();
            assert!(acc.bits_equal(&single), "node {node}: single-patch paths disagree");
        }
    }

    #[test]
    fn forward_from_patched_rejects_bad_sites() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let bad_node = ActPatch::identity(99, 0);
        assert!(m
            .forward_from_patched(None, &cache, &[bad_node], &mut ForwardOptions::default())
            .is_err());
        let bad_elem = ActPatch::identity(1, usize::MAX);
        assert!(m
            .forward_from_patched(None, &cache, &[bad_elem], &mut ForwardOptions::default())
            .is_err());
    }

    #[test]
    fn summary_lists_every_weight_layer() {
        let m = tiny_model();
        let s = m.summary();
        assert!(s.contains("tiny"));
        assert!(s.contains("conv.weight"));
        assert!(s.contains("fc.weight"));
        assert!(s.contains("total: 24 weights across 2 layers"));
    }

    #[test]
    fn weight_stats_are_consistent() {
        let m = tiny_model();
        let stats = m.weight_stats();
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert!(s.min <= s.max);
            assert!(f64::from(s.min) <= s.mean && s.mean <= f64::from(s.max));
            assert!(s.std >= 0.0);
        }
        // conv weights are the ramp (i - 9) * 0.1 over i in 0..18: mean -0.05.
        assert!((stats[0].mean - (-0.05)).abs() < 1e-6, "mean {}", stats[0].mean);
    }

    #[test]
    fn cache_memory_accounting() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        // input 16 + conv out 32 + relu 32 + gap 2 + fc 3 = 85 floats
        assert_eq!(cache.memory_bytes(), 85 * 4);
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shapes");
        let same = a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{what}: values diverge");
    }

    #[test]
    fn forward_policies_and_arena_are_bit_identical() {
        let m = tiny_model();
        let input = tiny_input();
        let fast = m.forward(&input).unwrap();
        let naive = m
            .forward_with(
                &input,
                &mut ForwardOptions { policy: KernelPolicy::Naive, ..Default::default() },
            )
            .unwrap();
        assert_bits_equal(&fast, &naive, "fast vs naive");
        let mut arena = ScratchArena::new();
        for round in 0..3 {
            let opts = &mut ForwardOptions { arena: Some(&mut arena), ..Default::default() };
            let with_arena = m.forward_with(&input, opts).unwrap();
            assert_bits_equal(&fast, &with_arena, "arena round");
            let _ = round;
        }
        assert!(arena.peak_bytes() > 0, "arena must have been used");
    }

    #[test]
    fn forward_from_with_lowered_panels_matches_plain() {
        let m = tiny_model();
        let input = tiny_input();
        let cache = m.forward_cached(&input).unwrap();
        // Node 1 is the conv; lower its golden input (the image itself).
        let crate::NodeOp::Conv { weight, cfg, .. } = m.nodes()[1].op else {
            panic!("node 1 is the conv")
        };
        let w = &m.store().get(weight).unwrap().tensor;
        let lowered = sfi_tensor::ops::im2col_lower(cache.get(0).unwrap(), w, cfg).unwrap();
        let plain = m.forward_from(1, &cache).unwrap();
        let mut arena = ScratchArena::new();
        let opts = &mut ForwardOptions {
            arena: Some(&mut arena),
            lowered: Some((1, &lowered)),
            ..Default::default()
        };
        let fast = m.forward_from_with(1, &cache, opts).unwrap();
        assert_bits_equal(&plain, &fast, "lowered forward_from");
    }

    #[test]
    fn converging_forward_detects_an_unchanged_model() {
        // With no fault injected, the very first recomputed node matches
        // the cache and the pass stops immediately.
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let mut arena = ScratchArena::new();
        let opts = &mut ForwardOptions { arena: Some(&mut arena), ..Default::default() };
        let out = m.forward_from_converging(1, &cache, opts).unwrap();
        assert_eq!(out, ForwardOutcome::Converged { at_node: 1 });
    }

    #[test]
    fn converging_forward_matches_plain_on_a_diverging_model() {
        let mut m = tiny_model();
        let input = tiny_input();
        let cache = m.forward_cached(&input).unwrap();
        // A large conv-weight change diverges all the way to the logits.
        m.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[0] += 100.0;
        let plain = m.forward_from(1, &cache).unwrap();
        let out = m.forward_from_converging(1, &cache, &mut ForwardOptions::default()).unwrap();
        match out {
            ForwardOutcome::Logits(l) => assert_bits_equal(&plain, &l, "diverged logits"),
            ForwardOutcome::Converged { at_node } => panic!("spurious convergence at {at_node}"),
        }
    }

    #[test]
    fn converging_forward_detects_relu_annihilation() {
        // tiny_model's conv output channel 1 has non-negative weights
        // ((9..18) - 9) * 0.1; on an all-negative input every channel-1
        // pre-activation is <= 0, so the ReLU clamps the whole channel to
        // zero. Scaling a channel-1 weight keeps the pre-activations
        // non-positive: the conv output *diverges* from the cache, but the
        // ReLU output is bit-identical — the fault is provably masked at
        // node 2 and the rest of the network is never computed.
        let m = tiny_model();
        let input = Tensor::full([1, 1, 4, 4], -1.0);
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        // Weight 13 belongs to output channel 1 and is 0.4; keep it positive.
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[13] *= 1.5;
        let out =
            faulty.forward_from_converging(1, &cache, &mut ForwardOptions::default()).unwrap();
        assert_eq!(out, ForwardOutcome::Converged { at_node: 2 });
    }

    #[test]
    fn converging_forward_respects_skip_connections() {
        // Same ReLU-annihilation fault as above, but a residual Add reads
        // the *conv* output directly. The ReLU activation matches golden
        // bit-for-bit, yet the still-dirty conv output flows around it —
        // stopping there would misclassify. Live-dirty tracking must keep
        // the pass going and reproduce forward_from exactly.
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 9.0) * 0.1),
        );
        let w1 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([3, 2], |i| (i as f32 - 3.0) * 0.5),
        );
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::binary(NodeOp::Add, 2, 1),
            Node::unary(NodeOp::GlobalAvgPool, 3),
            Node::unary(NodeOp::Linear { weight: w1, bias: None }, 4),
        ];
        let m = Model::new("skip", nodes, store, vec![1, 4, 4]).unwrap();
        let input = Tensor::full([1, 1, 4, 4], -1.0);
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[13] *= 1.5;
        // The ReLU output really is golden — a chain-only rule would stop
        // at node 2 — while the conv output it shadows is dirty.
        let refreshed = faulty.forward_cached(&input).unwrap();
        assert!(refreshed.get(2).unwrap().bits_equal(cache.get(2).unwrap()));
        assert!(!refreshed.get(1).unwrap().bits_equal(cache.get(1).unwrap()));
        let plain = faulty.forward_from(1, &cache).unwrap();
        let out =
            faulty.forward_from_converging(1, &cache, &mut ForwardOptions::default()).unwrap();
        match out {
            ForwardOutcome::Logits(l) => assert_bits_equal(&plain, &l, "skip logits"),
            ForwardOutcome::Converged { at_node } => {
                panic!("unsound convergence at node {at_node} past a live dirty skip input")
            }
        }
    }

    /// Runs `forward_from_converging` with and without the single-unit
    /// probe armed and asserts the outcomes are indistinguishable.
    fn assert_probe_invisible(
        faulty: &Model,
        first_dirty: NodeId,
        cache: &ActivationCache,
        dirty_unit: usize,
        ctx: &str,
    ) -> ForwardOutcome {
        let input = cache.get(0).unwrap();
        let lowered = match &faulty.nodes()[first_dirty].op {
            NodeOp::Conv { weight, cfg, .. } => Some(
                sfi_tensor::ops::im2col_lower(
                    input,
                    &faulty.store().get(*weight).unwrap().tensor,
                    *cfg,
                )
                .unwrap(),
            ),
            _ => None,
        };
        let mut arena = ScratchArena::new();
        let probed = faulty
            .forward_from_converging(
                first_dirty,
                cache,
                &mut ForwardOptions {
                    arena: Some(&mut arena),
                    lowered: lowered.as_ref().map(|l| (first_dirty, l)),
                    dirty_unit: Some(dirty_unit),
                    ..Default::default()
                },
            )
            .unwrap();
        let full = faulty
            .forward_from_converging(
                first_dirty,
                cache,
                &mut ForwardOptions {
                    lowered: lowered.as_ref().map(|l| (first_dirty, l)),
                    ..Default::default()
                },
            )
            .unwrap();
        match (&probed, &full) {
            (ForwardOutcome::Logits(a), ForwardOutcome::Logits(b)) => assert_bits_equal(a, b, ctx),
            (a, b) => assert_eq!(a, b, "{ctx}: probe changed the outcome"),
        }
        probed
    }

    #[test]
    fn single_unit_probe_is_invisible_on_diverging_faults() {
        // Conv fault reaching channel 0: diverges to the logits. The probe
        // must materialize the conv activation bit-identically (golden
        // clone + one recomputed channel) so the downstream suffix — and
        // the returned logits — match the unprobed pass exactly.
        let input = tiny_input();
        let m = tiny_model();
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[0] += 100.0;
        let out = assert_probe_invisible(&faulty, 1, &cache, 0, "conv channel 0");
        assert!(matches!(out, ForwardOutcome::Logits(_)));

        // Non-finite faulted weight: NaN bits must flow through the probed
        // row exactly as through the full kernel.
        let mut nan_faulty = m.clone();
        nan_faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[3] = f32::NAN;
        assert_probe_invisible(&nan_faulty, 1, &cache, 0, "conv channel 0 NaN");

        // Linear fault (last node): the probe's materialized activation IS
        // the returned logits.
        let fc = m.node_of_param(1).unwrap();
        let mut fc_faulty = m.clone();
        fc_faulty.store_mut().get_mut(1).unwrap().tensor.as_mut_slice()[5] += 7.0;
        let unit = fc_faulty.param_output_unit(1, 5).unwrap();
        let out = assert_probe_invisible(&fc_faulty, fc, &cache, unit, "fc row");
        assert!(matches!(out, ForwardOutcome::Logits(_)));
    }

    #[test]
    fn single_unit_probe_converges_on_a_masked_channel() {
        // All-zero input: every conv product is 0.0 * w, so any *finite*
        // weight change leaves the output channel bit-identical — the
        // probe alone proves convergence at the conv node without
        // computing the other channel.
        let m = tiny_model();
        let input = Tensor::zeros([1, 1, 4, 4]);
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[13] *= 1.5;
        let out = assert_probe_invisible(&faulty, 1, &cache, 1, "masked conv channel");
        assert_eq!(out, ForwardOutcome::Converged { at_node: 1 });
    }

    #[test]
    fn single_unit_probe_respects_skip_connections() {
        // The skip-connection trap from converging_forward_respects_skip_
        // connections, probed: the faulted channel diverges at the conv,
        // the following ReLU matches golden, and the residual Add still
        // reads the dirty conv — the probed pass must keep going exactly
        // like the full one.
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 9.0) * 0.1),
        );
        let w1 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([3, 2], |i| (i as f32 - 3.0) * 0.5),
        );
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::binary(NodeOp::Add, 2, 1),
            Node::unary(NodeOp::GlobalAvgPool, 3),
            Node::unary(NodeOp::Linear { weight: w1, bias: None }, 4),
        ];
        let m = Model::new("skip", nodes, store, vec![1, 4, 4]).unwrap();
        let input = Tensor::full([1, 1, 4, 4], -1.0);
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[13] *= 1.5;
        let out = assert_probe_invisible(&faulty, 1, &cache, 1, "skip with probe");
        assert!(matches!(out, ForwardOutcome::Logits(_)));
    }

    #[test]
    fn param_output_unit_reads_the_leading_dimension() {
        let m = tiny_model();
        // conv weight [2, 1, 3, 3]: 9 elements per out-channel.
        assert_eq!(m.param_output_unit(0, 8), Some(0));
        assert_eq!(m.param_output_unit(0, 13), Some(1));
        // fc weight [3, 2]: 2 elements per row.
        assert_eq!(m.param_output_unit(1, 5), Some(2));
        // fc bias [3]: unit == index.
        assert_eq!(m.param_output_unit(2, 1), Some(1));
        // Out of range.
        assert_eq!(m.param_output_unit(0, 18), None);
        assert_eq!(m.param_output_unit(99, 0), None);
    }

    #[test]
    fn converging_forward_rejects_foreign_cache() {
        let m = tiny_model();
        let cache = ActivationCache { activations: vec![Tensor::zeros([1])] };
        assert!(matches!(
            m.forward_from_converging(1, &cache, &mut ForwardOptions::default()),
            Err(NnError::CacheMismatch { .. })
        ));
    }

    #[test]
    fn forward_patched_with_arena_matches_plain() {
        let m = tiny_model();
        let cache = m.forward_cached(&tiny_input()).unwrap();
        let plain = m.forward_patched(1, &cache, |t| t.as_mut_slice()[0] = 5.0).unwrap();
        let mut arena = ScratchArena::new();
        let opts = &mut ForwardOptions { arena: Some(&mut arena), ..Default::default() };
        let fast = m.forward_patched_with(1, &cache, |t| t.as_mut_slice()[0] = 5.0, opts).unwrap();
        assert_bits_equal(&plain, &fast, "patched with arena");
    }
}
