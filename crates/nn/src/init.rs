//! Deterministic, seeded parameter initialisation.
//!
//! The SFI paper's data-aware analysis consumes the *distribution* of the
//! golden weights (per-bit 0/1 frequencies and flip distances). Trained CNN
//! weights are empirically zero-mean with a per-layer scale set by fan-in,
//! which is exactly what He/Xavier initialisation produces — so a seeded
//! He-initialised network exercises the same IEEE-754 bit statistics as the
//! paper's pretrained models without requiring model zoo plumbing (see
//! DESIGN.md §2 for the substitution argument).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ParamKind, ParameterStore};

/// Draws one sample from `N(0, 1)` via the Box–Muller transform.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills every parameter of `store` deterministically from `seed`.
///
/// - convolution weights (`rank 4`): He normal, `σ = sqrt(2 / fan_in)`;
/// - linear weights (`rank 2`): Xavier uniform,
///   `bound = sqrt(6 / (fan_in + fan_out))`;
/// - biases: zero;
/// - batch-norm `γ`: `N(1, 0.05)`, `β`: `N(0, 0.05)`;
/// - batch-norm mean: `N(0, 0.1)`, variance: uniform in `[0.2, 1.0]`
///   (always positive).
///
/// The same `(store layout, seed)` pair always produces identical values, so
/// campaign workers can rebuild bit-identical models independently.
pub fn initialize_seeded(store: &mut ParameterStore, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for p in store.iter_mut() {
        let dims = p.tensor.shape().dims().to_vec();
        match p.kind {
            ParamKind::Weight { .. } => {
                if dims.len() == 4 {
                    // Conv weight [C_out, C_in/g, K, K]: fan_in = C_in/g * K * K.
                    let fan_in = (dims[1] * dims[2] * dims[3]) as f64;
                    let std = (2.0 / fan_in).sqrt();
                    for v in p.tensor.as_mut_slice() {
                        *v = (standard_normal(&mut rng) * std) as f32;
                    }
                } else {
                    // Linear weight [out, in]: Xavier uniform.
                    let fan_out = dims[0] as f64;
                    let fan_in = dims[1] as f64;
                    let bound = (6.0 / (fan_in + fan_out)).sqrt();
                    for v in p.tensor.as_mut_slice() {
                        *v = rng.gen_range(-bound..bound) as f32;
                    }
                }
            }
            ParamKind::Bias => {
                for v in p.tensor.as_mut_slice() {
                    *v = 0.0;
                }
            }
            ParamKind::BnGamma => {
                for v in p.tensor.as_mut_slice() {
                    *v = (1.0 + standard_normal(&mut rng) * 0.05) as f32;
                }
            }
            ParamKind::BnBeta => {
                for v in p.tensor.as_mut_slice() {
                    *v = (standard_normal(&mut rng) * 0.05) as f32;
                }
            }
            ParamKind::BnMean => {
                for v in p.tensor.as_mut_slice() {
                    *v = (standard_normal(&mut rng) * 0.1) as f32;
                }
            }
            ParamKind::BnVar => {
                for v in p.tensor.as_mut_slice() {
                    *v = rng.gen_range(0.2..1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_tensor::Tensor;

    fn sample_store() -> ParameterStore {
        let mut s = ParameterStore::new();
        s.push("conv.weight", ParamKind::Weight { layer: 0 }, Tensor::zeros([16, 8, 3, 3]));
        s.push("conv.bias", ParamKind::Bias, Tensor::zeros([16]));
        s.push("bn.gamma", ParamKind::BnGamma, Tensor::zeros([16]));
        s.push("bn.beta", ParamKind::BnBeta, Tensor::zeros([16]));
        s.push("bn.mean", ParamKind::BnMean, Tensor::zeros([16]));
        s.push("bn.var", ParamKind::BnVar, Tensor::zeros([16]));
        s.push("fc.weight", ParamKind::Weight { layer: 1 }, Tensor::zeros([10, 64]));
        s
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = sample_store();
        let mut b = sample_store();
        initialize_seeded(&mut a, 99);
        initialize_seeded(&mut b, 99);
        assert_eq!(a, b);
        let mut c = sample_store();
        initialize_seeded(&mut c, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn conv_weights_match_he_scale() {
        let mut s = ParameterStore::new();
        s.push("w", ParamKind::Weight { layer: 0 }, Tensor::zeros([64, 32, 3, 3]));
        initialize_seeded(&mut s, 7);
        let w = s.get(0).unwrap().tensor.as_slice();
        let n = w.len() as f64;
        let mean: f64 = w.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = w.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        let expected_var = 2.0 / (32.0 * 9.0);
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((var / expected_var - 1.0).abs() < 0.1, "var {var} vs {expected_var}");
    }

    #[test]
    fn linear_weights_within_xavier_bound() {
        let mut s = ParameterStore::new();
        s.push("w", ParamKind::Weight { layer: 0 }, Tensor::zeros([10, 64]));
        initialize_seeded(&mut s, 7);
        let bound = (6.0f64 / (64.0 + 10.0)).sqrt() as f32;
        assert!(s.get(0).unwrap().tensor.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn biases_are_zero_and_var_positive() {
        let mut s = sample_store();
        initialize_seeded(&mut s, 3);
        assert!(s.get(1).unwrap().tensor.iter().all(|v| v == 0.0));
        assert!(s.get(5).unwrap().tensor.iter().all(|v| v > 0.0));
    }

    #[test]
    fn gamma_centred_at_one() {
        let mut s = ParameterStore::new();
        s.push("g", ParamKind::BnGamma, Tensor::zeros([4096]));
        initialize_seeded(&mut s, 11);
        let g = s.get(0).unwrap().tensor.as_slice();
        let mean: f64 = g.iter().map(|&v| v as f64).sum::<f64>() / g.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
