//! Compiled execution plans: the explicit, analyzable form of a forward
//! pass.
//!
//! [`Model`]'s forward variants historically re-derived scheduling facts on
//! every call — topological order is implicit in node ids, tensor lifetime
//! (who reads an activation last) was recomputed per pass, and the
//! dense/sparse kernel choice hid behind runtime flags. [`CompiledPlan`]
//! hoists all of that to compile time, once per `(model, eval set)`:
//!
//! - **step list with input/flush lists** — per node, who reads it last
//!   ([`CompiledPlan::last_reader`]) and which activations die after each
//!   step ([flush lists](CompiledPlan::flush_after)), driving arena
//!   recycling at the earliest sound point;
//! - **per-step cost estimates** ([`StepCost`]) — flop and element counts
//!   that turn the delta-vs-dense choice into a compile-time decision
//!   ([`CompiledPlan::delta_profitable`]) instead of a runtime floor;
//! - **conv+bn(+relu) fusion groups** — batch-norm folds to a per-channel
//!   `mul`+`add` whose coefficients come from the *same*
//!   [`bn_channel_scale_shift`](sfi_tensor::ops::bn_channel_scale_shift)
//!   helper the unfused kernel uses, so the fused epilogue is bit-identical
//!   by construction. BN parameters are not fault-injectable (only weights
//!   are), so folding at compile time is always sound;
//! - the **batched eval-image engine**
//!   ([`CompiledPlan::forward_batched_from`]) — all E eval images stacked
//!   into one im2col panel so each suffix node costs one GEMM per fault
//!   instead of E, with golden-convergence checks and single-unit probing
//!   expressed as plan transforms (a dirty suffix start, an early-exit
//!   rewrite) rather than forward-pass flags.
//!
//! # Bit-identity of the batched pass
//!
//! Every operator in the graph treats the batch dimension as fully
//! independent: image `i`'s output elements depend only on image `i`'s
//! inputs, and each output element accumulates its `k` products in the same
//! increasing-`ki` order on the per-image and batched paths (the batched
//! im2col panel concatenates images along the *column* axis, which never
//! reorders any single element's accumulation chain). The batched suffix is
//! therefore bit-identical, image by image, to E per-image suffixes — the
//! invariant the differential proptests in `tests/plan_equivalence.rs` pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sfi_tensor::ops::{self, BatchNormParams, BatchedLowered, ConvEpilogue, FusedActivation};
use sfi_tensor::{ScratchArena, Tensor};

use crate::model::NodeValues;
use crate::{ActivationCache, ForwardOptions, Model, NnError, NodeId, NodeOp, ParamId};

/// Compile-time cost estimate of one plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepCost {
    /// Estimated floating-point operations per evaluation image.
    pub flops: u64,
    /// Output elements per evaluation image (batch dimension excluded).
    pub out_elems: usize,
}

/// One conv+bn(+relu) fusion group: the conv head, the folded batch-norm
/// coefficients, and the optional activation, emitted as a single fused
/// kernel by the batched engine.
#[derive(Debug, Clone)]
struct FusedGroup {
    /// The conv node heading the group.
    conv: NodeId,
    /// The batch-norm node folded into the epilogue.
    bn: NodeId,
    /// The activation node closing the group, when present.
    act: Option<NodeId>,
    /// Epilogue activation (`None` when the group is conv+bn only).
    activation: FusedActivation,
    /// Folded per-channel scale, from `bn_channel_scale_shift`.
    scale: Vec<f32>,
    /// Folded per-channel shift, from `bn_channel_scale_shift`.
    shift: Vec<f32>,
}

impl FusedGroup {
    /// The node whose activation the fused kernel produces.
    fn output(&self) -> NodeId {
        self.act.unwrap_or(self.bn)
    }
}

/// Per-image element count below which a *weight* fault's seed node makes
/// sparse delta propagation unprofitable: weight faults dirty a whole
/// output channel, so on small feature maps the 4x4 block-mask bookkeeping
/// loses to the dense early-exit path (measured in BENCH_delta.json).
const DELTA_SEED_BREAK_EVEN_ELEMS: usize = 2048;

/// Minimum estimated dense-suffix flops (per image) for the delta engine to
/// amortize its mask bookkeeping. Reduced-scale campaigns (smoke/default)
/// sit one to two orders of magnitude below this and measured 0.83x/0.88x
/// under delta in BENCH_delta.json; the full-scale ResNet-20 suffixes that
/// profit sit well above.
const DELTA_MIN_SUFFIX_FLOPS: u64 = 8_000_000;

/// Maximum estimated dense-suffix flops (per image) for the batched
/// eval-image engine to be the better dispatch. Small suffixes are
/// per-call-overhead-dominated and batching the images into one GEMM per
/// node wins (1.2-1.4x at reduced scales in BENCH_kernels.json); large
/// suffixes are compute-bound — the per-image GEMMs already run at full
/// arithmetic throughput, and batching *forfeits* the per-image early
/// exits (a critical fault stops the per-image loop after
/// `needed_for_critical` mismatches, while a batched pass always evaluates
/// every image), measuring 0.17x on full-scale critical faults.
const BATCHED_MAX_SUFFIX_FLOPS: u64 = 2_000_000;

/// A compiled execution plan for one [`Model`]: explicit topological step
/// order, tensor lifetime, per-step costs, and fusion groups. Built once
/// per `(model, eval set)` (shapes come from a golden activation cache) and
/// shared read-only across campaign workers.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_nodes: usize,
    /// `last_reader[i]` — the last node that reads node `i`'s activation
    /// (`i` itself when nothing does).
    last_reader: Vec<NodeId>,
    /// `flush[id]` — nodes whose activation dies once step `id` has run.
    flush: Vec<Vec<NodeId>>,
    /// Per-node cost estimates (`cost[0]` is the input node: zero).
    cost: Vec<StepCost>,
    /// `suffix_flops[id]` — estimated dense flops of nodes `id..` per image.
    suffix_flops: Vec<u64>,
    /// Fusion group index a conv node heads, if any.
    head: Vec<Option<usize>>,
    /// Fusion group index a node is a *non-head* member of, if any.
    member: Vec<Option<usize>>,
    groups: Vec<FusedGroup>,
    /// Conv nodes whose golden input lowers to im2col panels (depthwise
    /// convs dispatch to a direct kernel and never lower).
    lowerable: Vec<bool>,
}

/// Result of a single-unit probe of the first dirty node on the batched
/// path (mirrors the per-image probe in [`Model::forward_from_converging`]).
enum BatchedProbe {
    /// No single-unit kernel for this node/op; fall back to full eval.
    Unsupported,
    /// The probed unit recomputed to golden bits in **every** image — the
    /// whole node is provably golden for the whole batch.
    Clean,
    /// The unit diverged somewhere; this is the node's full batched
    /// activation (golden clone with the unit overwritten per image).
    Dirty(Tensor),
}

/// Outcome of a batched suffix execution
/// ([`CompiledPlan::forward_batched_from`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchedOutcome {
    /// Every image's recomputed activation became bit-identical to the
    /// batched golden cache at `at_node` with no live dirty values —
    /// all E predictions provably equal the golden ones.
    Converged {
        /// First step at which the whole batch matched the golden cache.
        at_node: NodeId,
    },
    /// Batched logits, `[images, classes]`; per-image rows are
    /// bit-identical to the per-image forward passes.
    Logits(Tensor),
}

impl CompiledPlan {
    /// Compiles `model` against the activation shapes recorded in `cache`
    /// (any golden cache of the model — shapes, not values, are read; the
    /// batch dimension of the cache does not matter).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when `cache` does not cover the
    /// model's nodes.
    pub fn compile(model: &Model, cache: &ActivationCache) -> Result<Self, NnError> {
        let nodes = model.nodes();
        let n = nodes.len();
        if cache.len() != n {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "plan compile: cache holds {} activations, model has {n} nodes",
                    cache.len()
                ),
            });
        }
        let mut last_reader: Vec<NodeId> = (0..n).collect();
        let mut readers: Vec<u32> = vec![0; n];
        for (id, node) in nodes.iter().enumerate().skip(1) {
            for &inp in &node.inputs {
                last_reader[inp] = id;
                readers[inp] += 1;
            }
        }
        let mut flush: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for i in 1..n.saturating_sub(1) {
            flush[last_reader[i]].push(i);
        }
        let param = |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
        let mut cost = vec![StepCost::default(); n];
        let mut lowerable = vec![false; n];
        for (id, node) in nodes.iter().enumerate().skip(1) {
            let out = cache.get(id).expect("cache covers all nodes");
            let out_shape = out.shape();
            let out_elems: usize = out_shape.dims()[1..].iter().product();
            let flops = match &node.op {
                NodeOp::Conv { weight, cfg, .. } => {
                    let w = param(*weight);
                    let k_len: usize = w.shape().dims()[1..].iter().product();
                    let input = cache.get(node.inputs[0]).expect("cache covers all nodes");
                    lowerable[id] = ops::conv2d_uses_lowering(input, w, *cfg);
                    2 * k_len as u64 * out_elems as u64
                }
                NodeOp::Linear { weight, .. } => {
                    let w = param(*weight);
                    2 * w.shape().dims().iter().product::<usize>() as u64
                }
                NodeOp::BatchNorm { .. } => 2 * out_elems as u64,
                NodeOp::AvgPool { kernel } | NodeOp::MaxPool { kernel } => {
                    (kernel * kernel) as u64 * out_elems as u64
                }
                NodeOp::GlobalAvgPool => {
                    let input = cache.get(node.inputs[0]).expect("cache covers all nodes");
                    input.shape().dims()[1..].iter().product::<usize>() as u64
                }
                _ => out_elems as u64,
            };
            cost[id] = StepCost { flops, out_elems };
        }
        let mut suffix_flops = vec![0u64; n + 1];
        for id in (0..n).rev() {
            suffix_flops[id] = suffix_flops[id + 1] + cost[id].flops;
        }
        suffix_flops.pop();

        // Fusion grouping: conv -> bn (-> relu/relu6) chains whose
        // intermediates have exactly one reader, in consecutive id order
        // (how every builder emits them). Single-reader is what makes it
        // sound to never materialize the intermediate activations.
        let mut head = vec![None; n];
        let mut member = vec![None; n];
        let mut groups = Vec::new();
        for id in 1..n {
            if !lowerable[id] {
                continue;
            }
            if !matches!(nodes[id].op, NodeOp::Conv { .. }) {
                continue;
            }
            let Some(bn_node) = nodes.get(id + 1) else { continue };
            let NodeOp::BatchNorm { gamma, beta, mean, var, eps } = &bn_node.op else { continue };
            if bn_node.inputs != [id] || readers[id] != 1 {
                continue;
            }
            let bn = id + 1;
            let channels = cache.get(bn).expect("cache covers all nodes").shape().dims()[1];
            let params = BatchNormParams {
                gamma: param(*gamma),
                beta: param(*beta),
                mean: param(*mean),
                var: param(*var),
                eps: *eps,
            };
            let mut scale = Vec::with_capacity(channels);
            let mut shift = Vec::with_capacity(channels);
            for c in 0..channels {
                let (s, t) = ops::bn_channel_scale_shift(&params, c);
                scale.push(s);
                shift.push(t);
            }
            let act = nodes.get(bn + 1).and_then(|cand| {
                if cand.inputs != [bn] || readers[bn] != 1 {
                    return None;
                }
                match cand.op {
                    NodeOp::Relu => Some((bn + 1, FusedActivation::Relu)),
                    NodeOp::Relu6 => Some((bn + 1, FusedActivation::Relu6)),
                    _ => None,
                }
            });
            let (act_node, activation) = match act {
                Some((a, f)) => (Some(a), f),
                None => (None, FusedActivation::None),
            };
            let gi = groups.len();
            groups.push(FusedGroup { conv: id, bn, act: act_node, activation, scale, shift });
            head[id] = Some(gi);
            member[bn] = Some(gi);
            if let Some(a) = act_node {
                member[a] = Some(gi);
            }
        }
        Ok(Self {
            n_nodes: n,
            last_reader,
            flush,
            cost,
            suffix_flops,
            head,
            member,
            groups,
            lowerable,
        })
    }

    /// Number of nodes the plan covers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.n_nodes
    }

    /// Per-node last readers (tensor lifetime); `last_reader[i] == i` means
    /// nothing reads node `i`.
    pub fn last_reader(&self) -> &[NodeId] {
        &self.last_reader
    }

    /// Nodes whose activations die once step `id` has executed.
    pub fn flush_after(&self, id: NodeId) -> &[NodeId] {
        &self.flush[id]
    }

    /// Compile-time cost estimate of step `id`.
    pub fn step_cost(&self, id: NodeId) -> StepCost {
        self.cost[id]
    }

    /// Estimated dense flops (per image) of re-executing nodes `id..`.
    pub fn suffix_flops(&self, id: NodeId) -> u64 {
        self.suffix_flops.get(id).copied().unwrap_or(0)
    }

    /// Whether node `id` is a conv whose input lowers to im2col panels.
    pub fn is_lowerable_conv(&self, id: NodeId) -> bool {
        self.lowerable.get(id).copied().unwrap_or(false)
    }

    /// Number of conv+bn(+relu) fusion groups in the plan.
    pub fn fused_groups(&self) -> usize {
        self.groups.len()
    }

    /// The fusion group node `id` belongs to, as `(head conv, group
    /// output)`, when the plan fused it into one.
    pub fn fusion_of(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        let gi = self
            .head
            .get(id)
            .copied()
            .flatten()
            .or_else(|| self.member.get(id).copied().flatten())?;
        let g = &self.groups[gi];
        Some((g.conv, g.output()))
    }

    /// The compile-time delta-vs-dense decision for a *weight* fault whose
    /// first dirty node is `first_dirty`: sparse delta propagation is
    /// selected only when the dirty channel is wide enough to amortize the
    /// block-mask bookkeeping **and** the remaining dense suffix is
    /// expensive enough that skipping clean blocks can pay. This replaces
    /// the former `DELTA_MIN_SEED_ELEMENTS` runtime floor — the same
    /// break-even expressed as a per-node cost-model decision; reduced-scale
    /// campaigns (whose suffixes cost almost nothing) now always take the
    /// dense early-exit path they measure faster on.
    pub fn delta_profitable(&self, first_dirty: NodeId) -> bool {
        let Some(cost) = self.cost.get(first_dirty) else { return false };
        cost.out_elems >= DELTA_SEED_BREAK_EVEN_ELEMS
            && self.suffix_flops(first_dirty) >= DELTA_MIN_SUFFIX_FLOPS
    }

    /// The compile-time batched-vs-per-image decision for a fault whose
    /// first dirty node is `first_dirty`: the batched eval-image engine is
    /// selected only while the remaining suffix is cheap enough to be
    /// call-overhead-dominated. Expensive suffixes keep the per-image loop,
    /// whose convergence and `needed_for_critical` early exits skip real
    /// compute that a batched pass would always pay for (see
    /// `BATCHED_MAX_SUFFIX_FLOPS`). Classifications and inference counts
    /// are identical on both sides of the decision.
    pub fn batched_profitable(&self, first_dirty: NodeId) -> bool {
        first_dirty < self.n_nodes && self.suffix_flops(first_dirty) <= BATCHED_MAX_SUFFIX_FLOPS
    }

    /// Runs the batched suffix from `first_dirty` over the stacked
    /// evaluation images: one fused GEMM per conv step for the whole batch
    /// instead of one per image. `cache` is the **batched** golden cache
    /// (built by running [`Model::forward_cached`] on the stacked images),
    /// `lowered` the batched im2col panels of the first dirty conv's golden
    /// input, and `dirty_unit` the one output unit the weight fault can
    /// reach (arming the batched single-unit probe).
    ///
    /// With `check_convergence` the pass stops as soon as the whole batched
    /// activation is bit-identical to the golden cache with no live dirty
    /// values — every image's prediction then provably equals the golden
    /// one. Per-image rows of the returned logits are bit-identical to E
    /// per-image passes (see the module docs for the argument).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when the plan or cache does not
    /// match the model, or the first operator failure.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn forward_batched_from(
        &self,
        model: &Model,
        first_dirty: NodeId,
        cache: &ActivationCache,
        lowered: Option<&BatchedLowered>,
        dirty_unit: Option<usize>,
        check_convergence: bool,
        arena: &mut ScratchArena,
    ) -> Result<BatchedOutcome, NnError> {
        let n = self.n_nodes;
        if model.nodes().len() != n || cache.len() != n {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "batched forward: plan covers {n} nodes, model has {}, cache {}",
                    model.nodes().len(),
                    cache.len()
                ),
            });
        }
        let first_dirty = first_dirty.max(1);
        if first_dirty >= n {
            return Ok(BatchedOutcome::Logits(cache.get(n - 1).expect("nonempty").clone()));
        }
        let mut expiring: Vec<u32> = vec![0; n];
        let mut live_dirty: u32 = 0;
        let mut fresh: Vec<Tensor> = Vec::with_capacity(n - first_dirty);
        let mut start = first_dirty;
        if check_convergence {
            if let Some(unit) = dirty_unit {
                match self.probe_batched(model, first_dirty, cache, lowered, unit, arena)? {
                    BatchedProbe::Unsupported => {}
                    BatchedProbe::Clean => {
                        return Ok(BatchedOutcome::Converged { at_node: first_dirty });
                    }
                    BatchedProbe::Dirty(t) => {
                        if self.last_reader[first_dirty] > first_dirty {
                            expiring[self.last_reader[first_dirty]] += 1;
                            live_dirty += 1;
                        }
                        fresh.push(t);
                        start = first_dirty + 1;
                    }
                }
            }
        }
        let placeholder = || Tensor::zeros([1]);
        let mut id = start;
        while id < n {
            // A fused group executes whole only when the suffix enters at
            // (or before) its head; a mid-group suffix start runs the
            // remaining members unfused (the suffix-start transform splits
            // the group).
            let group = self.head[id].map(|gi| &self.groups[gi]);
            let (out_node, value) = match group {
                Some(g) if g.output() < n => {
                    let v =
                        self.eval_fused(model, g, first_dirty, cache, &fresh, lowered, arena)?;
                    (g.output(), v)
                }
                _ => {
                    let v =
                        self.eval_step(model, id, first_dirty, cache, &fresh, lowered, arena)?;
                    (id, v)
                }
            };
            // The steps id..=out_node have now read their inputs: dirty
            // values last read inside the group can no longer spread.
            for expired in &expiring[id..=out_node] {
                live_dirty -= expired;
            }
            let golden = cache.get(out_node).expect("cache covers all nodes");
            let clean = value.bits_equal(golden);
            if check_convergence && clean && live_dirty == 0 {
                arena.recycle(value.into_vec());
                for t in fresh {
                    if t.len() > 1 {
                        arena.recycle(t.into_vec());
                    }
                }
                return Ok(BatchedOutcome::Converged { at_node: out_node });
            }
            if !clean && self.last_reader[out_node] > out_node {
                expiring[self.last_reader[out_node]] += 1;
                live_dirty += 1;
            }
            // Fused-away intermediates occupy their suffix slots with
            // placeholders; the single-reader fusion condition guarantees
            // nothing outside the group reads them.
            for _ in id..out_node {
                fresh.push(placeholder());
            }
            fresh.push(value);
            // Flush activations whose last reader has now run.
            for step in id..=out_node {
                for &dead in &self.flush[step] {
                    if dead >= first_dirty && dead < out_node {
                        let slot = dead - first_dirty;
                        if slot < fresh.len() && fresh[slot].len() > 1 {
                            let t = std::mem::replace(&mut fresh[slot], placeholder());
                            arena.recycle(t.into_vec());
                        }
                    }
                }
            }
            id = out_node + 1;
        }
        let out = fresh.pop().expect("suffix is nonempty");
        for t in fresh {
            if t.len() > 1 {
                arena.recycle(t.into_vec());
            }
        }
        Ok(BatchedOutcome::Logits(out))
    }

    /// Evaluates one fused conv+bn(+relu) group over the batched values:
    /// one packed GEMM per conv group, bias + folded BN + activation
    /// applied in the scatter epilogue (bit-identical to the unfused
    /// three-pass sequence — see the module docs).
    #[allow(clippy::too_many_arguments)]
    fn eval_fused(
        &self,
        model: &Model,
        g: &FusedGroup,
        first_dirty: NodeId,
        cache: &ActivationCache,
        fresh: &[Tensor],
        lowered: Option<&BatchedLowered>,
        arena: &mut ScratchArena,
    ) -> Result<Tensor, NnError> {
        let node = &model.nodes()[g.conv];
        let NodeOp::Conv { weight, bias, cfg } = &node.op else {
            unreachable!("fusion heads are conv nodes");
        };
        let param = |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
        let w = param(*weight);
        let b = bias.map(&param);
        let wrap = |source| NnError::Op { node: g.conv, source };
        let input = value_of(node.inputs[0], first_dirty, cache, fresh);
        let ep = ConvEpilogue { bn: Some((&g.scale, &g.shift)), act: g.activation };
        let out = match lowered {
            // The first dirty conv's golden-input panels were pre-lowered
            // once per campaign; reuse them for every fault at this node.
            Some(low) if g.conv == first_dirty => {
                ops::conv2d_batched_from_lowered(low, w, b, Some(&ep), Some(arena)).map_err(wrap)?
            }
            _ => {
                let owned = ops::im2col_lower_batched(input, w, *cfg, Some(arena)).map_err(wrap)?;
                let out = ops::conv2d_batched_from_lowered(&owned, w, b, Some(&ep), Some(arena))
                    .map_err(wrap)?;
                arena.recycle(owned.into_cols());
                out
            }
        };
        Ok(out)
    }

    /// Evaluates one unfused plan step over the batched values. Lowerable
    /// convs still take the batched single-GEMM path (without an epilogue);
    /// everything else dispatches through the model's fast per-op kernels,
    /// which treat the batch dimension natively.
    #[allow(clippy::too_many_arguments)]
    fn eval_step(
        &self,
        model: &Model,
        id: NodeId,
        first_dirty: NodeId,
        cache: &ActivationCache,
        fresh: &[Tensor],
        lowered: Option<&BatchedLowered>,
        arena: &mut ScratchArena,
    ) -> Result<Tensor, NnError> {
        let node = &model.nodes()[id];
        if self.lowerable[id] {
            if let NodeOp::Conv { weight, bias, cfg } = &node.op {
                let param =
                    |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
                let w = param(*weight);
                let b = bias.map(&param);
                let wrap = |source| NnError::Op { node: id, source };
                let input = value_of(node.inputs[0], first_dirty, cache, fresh);
                let out = match lowered {
                    Some(low) if id == first_dirty => {
                        ops::conv2d_batched_from_lowered(low, w, b, None, Some(arena))
                            .map_err(wrap)?
                    }
                    _ => {
                        let owned =
                            ops::im2col_lower_batched(input, w, *cfg, Some(arena)).map_err(wrap)?;
                        let out = ops::conv2d_batched_from_lowered(&owned, w, b, None, Some(arena))
                            .map_err(wrap)?;
                        arena.recycle(owned.into_cols());
                        out
                    }
                };
                return Ok(out);
            }
        }
        let vals = NodeValues {
            prefix: cache.activations(),
            over: None,
            multi: &[],
            suffix_base: first_dirty,
            suffix: fresh,
        };
        let mut opts = ForwardOptions { arena: Some(arena), ..ForwardOptions::default() };
        model.eval_node_with(id, &vals, &mut opts)
    }

    /// Batched single-unit probe of the first dirty node: evaluates only
    /// the faulted output unit for **all** images with one GEMM row over
    /// the batched panel, and compares it against the batched golden
    /// activation bit-for-bit.
    fn probe_batched(
        &self,
        model: &Model,
        id: NodeId,
        cache: &ActivationCache,
        lowered: Option<&BatchedLowered>,
        unit: usize,
        arena: &mut ScratchArena,
    ) -> Result<BatchedProbe, NnError> {
        let node = &model.nodes()[id];
        let param = |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let golden = cache.get(id).expect("cache covers all nodes");
        let vals: Vec<f32> = match &node.op {
            NodeOp::Conv { weight, bias, .. } => {
                let Some(low) = lowered else { return Ok(BatchedProbe::Unsupported) };
                let w = param(*weight);
                if unit >= w.shape().n() {
                    return Ok(BatchedProbe::Unsupported);
                }
                ops::conv2d_channel_batched(low, w, bias.map(&param), unit, Some(arena))
                    .map_err(wrap)?
            }
            NodeOp::Linear { weight, bias } => {
                let xv = cache.get(node.inputs[0]).expect("cache covers all nodes");
                let reshaped;
                let x2 = if xv.shape().rank() == 2 {
                    xv
                } else {
                    let b = xv.shape().dims()[0];
                    let rest = xv.len() / b;
                    reshaped = xv.reshape([b, rest]).map_err(wrap)?;
                    &reshaped
                };
                let w = param(*weight);
                if unit >= w.shape().dims()[0] {
                    return Ok(BatchedProbe::Unsupported);
                }
                ops::linear_row(x2, w, bias.map(&param), unit).map_err(wrap)?
            }
            _ => return Ok(BatchedProbe::Unsupported),
        };
        let shape = golden.shape();
        let dims = shape.dims();
        let (batch, units) = (dims[0], dims[1]);
        let chunk: usize = dims[2..].iter().product();
        let g = golden.as_slice();
        let clean = (0..batch).all(|n| {
            let gs = &g[(n * units + unit) * chunk..][..chunk];
            let vs = &vals[n * chunk..][..chunk];
            gs.iter().zip(vs).all(|(a, b)| a.to_bits() == b.to_bits())
        });
        if clean {
            arena.recycle(vals);
            return Ok(BatchedProbe::Clean);
        }
        let mut data = arena.take(g.len());
        data.copy_from_slice(g);
        for n in 0..batch {
            data[(n * units + unit) * chunk..][..chunk]
                .copy_from_slice(&vals[n * chunk..][..chunk]);
        }
        arena.recycle(vals);
        let t = Tensor::from_vec(shape, data).expect("materialized activation matches golden");
        Ok(BatchedProbe::Dirty(t))
    }
}

/// Resolves a node reference during a batched suffix: cached golden values
/// for the prefix, freshly computed values for the suffix.
fn value_of<'a>(
    id: NodeId,
    first_dirty: NodeId,
    cache: &'a ActivationCache,
    fresh: &'a [Tensor],
) -> &'a Tensor {
    if id >= first_dirty {
        &fresh[id - first_dirty]
    } else {
        cache.get(id).expect("cache covers all nodes")
    }
}

/// NaN-aware argmax over one logits row, identical to
/// [`Tensor::argmax`](sfi_tensor::Tensor::argmax) on a single-image tensor:
/// NaNs are skipped unless the whole row is NaN (then index 0 wins), ties
/// keep the first maximum.
pub fn row_argmax(row: &[f32]) -> Option<usize> {
    if row.is_empty() {
        return None;
    }
    Some(crate::model::argmax_slice(row))
}

/// Reusable per-worker session state: the scratch arena plus a high-water
/// mark shared across every worker of a campaign session, so telemetry
/// reports one session-wide arena peak instead of summing (and
/// double-counting) per-worker figures.
#[derive(Debug, Default)]
pub struct SessionState {
    /// The worker's scratch arena; persists across faults and campaigns.
    pub arena: ScratchArena,
    shared_peak: Option<Arc<AtomicU64>>,
}

impl SessionState {
    /// A fresh state with a private arena and no shared peak.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh state publishing its arena peak into `peak` (shared by
    /// every worker of one session).
    pub fn with_shared_peak(peak: Arc<AtomicU64>) -> Self {
        Self { arena: ScratchArena::new(), shared_peak: Some(peak) }
    }

    /// Publishes the arena's current high-water mark into the shared
    /// session peak (monotone `max`), returning the session-wide value.
    pub fn publish_peak(&self) -> u64 {
        let mine = self.arena.peak_bytes() as u64;
        match &self.shared_peak {
            Some(shared) => {
                shared.fetch_max(mine, Ordering::Relaxed);
                shared.load(Ordering::Relaxed)
            }
            None => mine,
        }
    }

    /// The session-wide arena high-water mark (this worker's own peak when
    /// no shared counter was attached).
    pub fn high_water(&self) -> u64 {
        match &self.shared_peak {
            Some(shared) => shared.load(Ordering::Relaxed).max(self.arena.peak_bytes() as u64),
            None => self.arena.peak_bytes() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;

    fn setup() -> (Model, ActivationCache, CompiledPlan) {
        let model = ResNetConfig::resnet20_micro().build_seeded(7).unwrap();
        let input = Tensor::from_fn([1, 3, 16, 16], |i| (i as f32 * 0.37).sin());
        let cache = model.forward_cached(&input).unwrap();
        let plan = CompiledPlan::compile(&model, &cache).unwrap();
        (model, cache, plan)
    }

    #[test]
    fn compile_covers_every_node_and_orders_lifetimes() {
        let (model, _, plan) = setup();
        assert_eq!(plan.len(), model.nodes().len());
        for (i, &lr) in plan.last_reader().iter().enumerate() {
            assert!(lr >= i, "a reader never precedes its producer");
        }
        // Every non-final node dies exactly once across the flush lists.
        let mut flushed = vec![0usize; plan.len()];
        for id in 0..plan.len() {
            for &dead in plan.flush_after(id) {
                flushed[dead] += 1;
            }
        }
        for (i, &count) in flushed.iter().enumerate().skip(1) {
            if i < plan.len() - 1 {
                assert_eq!(count, 1, "node {i} must be flushed exactly once");
            }
        }
    }

    #[test]
    fn fusion_groups_cover_conv_bn_relu_chains() {
        let (model, _, plan) = setup();
        assert!(plan.fused_groups() > 0, "resnet emits conv+bn+relu chains");
        // Group heads are lowerable convs.
        for (id, node) in model.nodes().iter().enumerate() {
            if plan.head.get(id).copied().flatten().is_some() {
                assert!(matches!(node.op, NodeOp::Conv { .. }));
                assert!(plan.is_lowerable_conv(id));
            }
        }
    }

    #[test]
    fn suffix_flops_monotone_decreasing() {
        let (_, _, plan) = setup();
        for id in 1..plan.len() {
            assert!(plan.suffix_flops(id - 1) >= plan.suffix_flops(id));
        }
        assert!(plan.suffix_flops(1) > 0);
    }

    #[test]
    fn delta_unprofitable_at_micro_scale() {
        let (_, _, plan) = setup();
        // The micro model's widest activation is far below the break-even
        // channel width; the cost model must keep every node dense.
        for id in 1..plan.len() {
            assert!(!plan.delta_profitable(id));
        }
    }

    #[test]
    fn batched_forward_matches_per_image_bitwise() {
        let (model, _, _) = setup();
        let images: Vec<Tensor> = (0..3)
            .map(|s| Tensor::from_fn([1, 3, 16, 16], |i| ((i + s * 31) as f32 * 0.21).cos()))
            .collect();
        let mut stacked = Vec::new();
        for img in &images {
            stacked.extend_from_slice(img.as_slice());
        }
        let batched_input = Tensor::from_vec([3, 3, 16, 16], stacked).unwrap();
        let bcache = model.forward_cached(&batched_input).unwrap();
        let plan = CompiledPlan::compile(&model, &bcache).unwrap();
        let mut arena = ScratchArena::new();
        // Re-run the whole graph batched (suffix start = 1, no probe, no
        // convergence) and compare per-image rows to per-image passes.
        let out =
            plan.forward_batched_from(&model, 1, &bcache, None, None, false, &mut arena).unwrap();
        let BatchedOutcome::Logits(logits) = out else { panic!("no convergence requested") };
        let classes = logits.len() / 3;
        for (i, img) in images.iter().enumerate() {
            let per_image = model.forward(img).unwrap();
            let row = &logits.as_slice()[i * classes..][..classes];
            for (a, b) in row.iter().zip(per_image.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "image {i}");
            }
        }
    }

    #[test]
    fn batched_convergence_detects_golden_recompute() {
        let (model, _, _) = setup();
        let input = Tensor::from_fn([2, 3, 16, 16], |i| (i as f32 * 0.11).sin());
        let bcache = model.forward_cached(&input).unwrap();
        let plan = CompiledPlan::compile(&model, &bcache).unwrap();
        let mut arena = ScratchArena::new();
        // Nothing is dirty: recomputing from node 1 must converge quickly.
        let out =
            plan.forward_batched_from(&model, 1, &bcache, None, None, true, &mut arena).unwrap();
        assert!(matches!(out, BatchedOutcome::Converged { .. }));
    }

    #[test]
    fn session_state_publishes_shared_peak() {
        let shared = Arc::new(AtomicU64::new(0));
        let mut a = SessionState::with_shared_peak(Arc::clone(&shared));
        let mut b = SessionState::with_shared_peak(Arc::clone(&shared));
        let buf = a.arena.take(1000);
        a.arena.recycle(buf);
        let buf = b.arena.take(10);
        b.arena.recycle(buf);
        a.publish_peak();
        b.publish_peak();
        assert_eq!(shared.load(Ordering::Relaxed), 4000);
        assert_eq!(b.high_water(), 4000, "peers see the session-wide peak");
    }

    #[test]
    fn row_argmax_matches_tensor_argmax() {
        let t = Tensor::from_vec([1, 4], vec![0.5, f32::NAN, 2.0, 2.0]).unwrap();
        assert_eq!(row_argmax(t.as_slice()), t.argmax());
        assert_eq!(row_argmax(&[]), None);
    }
}
