//! Compiled execution plans: the explicit, analyzable form of a forward
//! pass.
//!
//! [`Model`]'s forward variants historically re-derived scheduling facts on
//! every call — topological order is implicit in node ids, tensor lifetime
//! (who reads an activation last) was recomputed per pass, and the
//! dense/sparse kernel choice hid behind runtime flags. [`CompiledPlan`]
//! hoists all of that to compile time, once per `(model, eval set)`:
//!
//! - **step list with input/flush lists** — per node, who reads it last
//!   ([`CompiledPlan::last_reader`]) and which activations die after each
//!   step ([flush lists](CompiledPlan::flush_after)), driving arena
//!   recycling at the earliest sound point;
//! - **per-step cost estimates** ([`StepCost`]) — flop and element counts
//!   that turn the delta-vs-dense choice into a compile-time decision
//!   ([`CompiledPlan::delta_profitable`]) instead of a runtime floor;
//! - **conv+bn(+relu) fusion groups** — batch-norm folds to a per-channel
//!   `mul`+`add` whose coefficients come from the *same*
//!   [`bn_channel_scale_shift`](sfi_tensor::ops::bn_channel_scale_shift)
//!   helper the unfused kernel uses, so the fused epilogue is bit-identical
//!   by construction. BN parameters are not fault-injectable (only weights
//!   are), so folding at compile time is always sound;
//! - the **batched eval-image engine**
//!   ([`CompiledPlan::forward_batched_from`]) — all E eval images stacked
//!   into one im2col panel so each suffix node costs one GEMM per fault
//!   instead of E, with golden-convergence checks and single-unit probing
//!   expressed as plan transforms (a dirty suffix start, an early-exit
//!   rewrite) rather than forward-pass flags.
//!
//! # Bit-identity of the batched pass
//!
//! Every operator in the graph treats the batch dimension as fully
//! independent: image `i`'s output elements depend only on image `i`'s
//! inputs, and each output element accumulates its `k` products in the same
//! increasing-`ki` order on the per-image and batched paths (the batched
//! im2col panel concatenates images along the *column* axis, which never
//! reorders any single element's accumulation chain). The batched suffix is
//! therefore bit-identical, image by image, to E per-image suffixes — the
//! invariant the differential proptests in `tests/plan_equivalence.rs` pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sfi_tensor::ops::{self, BatchNormParams, BatchedLowered, ConvEpilogue, FusedActivation};
use sfi_tensor::{ScratchArena, Shape, Tensor};

use crate::model::NodeValues;
use crate::{ActivationCache, ForwardOptions, Model, NnError, NodeId, NodeOp, ParamId};

/// Compile-time cost estimate of one plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepCost {
    /// Estimated floating-point operations per evaluation image.
    pub flops: u64,
    /// Output elements per evaluation image (batch dimension excluded).
    pub out_elems: usize,
}

/// One conv+bn(+relu) fusion group: the conv head, the folded batch-norm
/// coefficients, and the optional activation, emitted as a single fused
/// kernel by the batched engine.
#[derive(Debug, Clone)]
struct FusedGroup {
    /// The conv node heading the group.
    conv: NodeId,
    /// The batch-norm node folded into the epilogue.
    bn: NodeId,
    /// The activation node closing the group, when present.
    act: Option<NodeId>,
    /// Epilogue activation (`None` when the group is conv+bn only).
    activation: FusedActivation,
    /// Folded per-channel scale, from `bn_channel_scale_shift`.
    scale: Vec<f32>,
    /// Folded per-channel shift, from `bn_channel_scale_shift`.
    shift: Vec<f32>,
}

impl FusedGroup {
    /// The node whose activation the fused kernel produces.
    fn output(&self) -> NodeId {
        self.act.unwrap_or(self.bn)
    }
}

/// Per-image element count below which a *weight* fault's seed node makes
/// sparse delta propagation unprofitable: weight faults dirty a whole
/// output channel, so on small feature maps the 4x4 block-mask bookkeeping
/// loses to the dense early-exit path (measured in BENCH_delta.json).
const DELTA_SEED_BREAK_EVEN_ELEMS: usize = 2048;

/// Minimum estimated dense-suffix flops (per image) for the delta engine to
/// amortize its mask bookkeeping. Reduced-scale campaigns (smoke/default)
/// sit one to two orders of magnitude below this and measured 0.83x/0.88x
/// under delta in BENCH_delta.json; the full-scale ResNet-20 suffixes that
/// profit sit well above.
const DELTA_MIN_SUFFIX_FLOPS: u64 = 8_000_000;

/// Maximum estimated dense-suffix flops (per image) for the batched
/// eval-image engine to be the better dispatch **when no calibration is
/// attached**. Small suffixes are per-call-overhead-dominated and batching
/// the images into one GEMM per node wins (1.2-1.4x at reduced scales in
/// BENCH_kernels.json); large suffixes are compute-bound — the per-image
/// GEMMs already run at full arithmetic throughput. A calibrated plan
/// replaces this constant with measured suffix costs (see
/// [`CompiledPlan::batched_profitable`]).
const BATCHED_MAX_SUFFIX_FLOPS: u64 = 2_000_000;

/// Measured dense-suffix seconds (per image) below which the delta engine's
/// block-mask bookkeeping cannot pay for itself even on a wide seed
/// channel. This floor deliberately sits comfortably above the *largest*
/// measured full-scale ResNet-20 suffix (471-526us at the first conv
/// across runs, CIFAR scale):
/// probing it at 150us routed 13 of 20 layers through delta and read 0.99x
/// with 55097 dense fallbacks against 1851 sparse nodes — a weight fault
/// dirties a whole output channel, so even a mantissa-gated cone saturates
/// at the first downstream conv and the pass degrades to
/// dense-plus-bookkeeping. Weight-fault delta therefore owns nothing at any
/// scale measured so far; the floor re-arms the engine only if a larger
/// model's measured suffix crosses it. Transient one-element cones bypass
/// this gate entirely and keep their 1.67x (BENCH_transient.json).
const DELTA_MIN_SUFFIX_SECS: f64 = 1e-3;

/// Batched-engine hedge for faults that are *likely to mismatch* (sign and
/// exponent bit flips): a critical fault under `AnyMismatch` stops the
/// per-image loop after one mismatching image, while the batched pass
/// computes every surviving row to the output — so the batched suffix must
/// beat half the per-image bill before a calibrated plan selects it. The
/// converging pass recovers convergence drop-outs on both sides; the hedge
/// prices only the per-image loop's critical-fault breaks.
pub const BATCHED_HEDGE_MISMATCH: f64 = 0.5;

/// Batched-engine hedge for faults that *rarely mismatch* (mantissa bit
/// flips, whose perturbation usually converges back to golden within a few
/// nodes): the per-image loop almost never early-exits on these, so it pays
/// close to the full `images * dense_suffix` bill and the batched pass only
/// needs a small safety margin. Measured batched-vs-dense suffix ratios sit
/// at 0.67-0.90 on the reduced scales and lower at full CIFAR scale, so
/// 0.95 routes mantissa strata batched nearly everywhere the panel GEMM
/// measurably wins.
pub const BATCHED_HEDGE_CONVERGENT: f64 = 0.95;

/// Repetitions per step when measuring calibration timings (min-of, after
/// one warmup) — the same discipline the benches use.
const CALIBRATION_REPS: usize = 3;

/// A compiled execution plan for one [`Model`]: explicit topological step
/// order, tensor lifetime, per-step costs, and fusion groups. Built once
/// per `(model, eval set)` (shapes come from a golden activation cache) and
/// shared read-only across campaign workers.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_nodes: usize,
    /// `last_reader[i]` — the last node that reads node `i`'s activation
    /// (`i` itself when nothing does).
    last_reader: Vec<NodeId>,
    /// `flush[id]` — nodes whose activation dies once step `id` has run.
    flush: Vec<Vec<NodeId>>,
    /// Per-node cost estimates (`cost[0]` is the input node: zero).
    cost: Vec<StepCost>,
    /// `suffix_flops[id]` — estimated dense flops of nodes `id..` per image.
    suffix_flops: Vec<u64>,
    /// Fusion group index a conv node heads, if any.
    head: Vec<Option<usize>>,
    /// Fusion group index a node is a *non-head* member of, if any.
    member: Vec<Option<usize>>,
    groups: Vec<FusedGroup>,
    /// Conv nodes whose golden input lowers to im2col panels (depthwise
    /// convs dispatch to a direct kernel and never lower).
    lowerable: Vec<bool>,
    /// Measured per-node engine costs, when [`CompiledPlan::calibrate`] ran.
    calibration: Option<Calibration>,
}

/// Measured per-node engine costs attached to a plan by
/// [`CompiledPlan::calibrate`]: wall-clock suffix costs of the dense
/// per-image path and the batched eval-image path against the campaign's
/// own golden caches. When present, the engine-dispatch predicates
/// ([`CompiledPlan::delta_profitable`],
/// [`CompiledPlan::batched_profitable`]) use these instead of the
/// hand-tuned flop constants, so each engine owns the tiers it measurably
/// wins on *this* model at *this* scale. Dispatch is result-invariant
/// (every engine produces byte-identical classifications and inference
/// counts), so timing noise in the measurement can only shift performance
/// and telemetry, never results.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    /// `dense_suffix_s[id]` — measured seconds to re-execute nodes `id..`
    /// densely for **one** image (min-of-reps per step, summed).
    dense_suffix_s: Vec<f64>,
    /// `batched_suffix_s[id]` — measured seconds to re-execute nodes `id..`
    /// batched over **all** images, including per-step im2col panel builds
    /// (the lazy-panel cost a real fault pays at non-seed nodes).
    batched_suffix_s: Vec<f64>,
    /// `panel_s[id]` — measured seconds to build node `id`'s batched
    /// im2col panel from its golden input (zero for non-lowerable nodes).
    /// The executor shares one panel across every same-stratum fault on a
    /// worker, so the *marginal* batched cost of a fault excludes it.
    panel_s: Vec<f64>,
    /// Batch size the batched timings were taken at.
    images: usize,
}

impl Calibration {
    /// Measured seconds of the dense per-image suffix from `id` (one image).
    pub fn dense_suffix_secs(&self, id: NodeId) -> f64 {
        self.dense_suffix_s.get(id).copied().unwrap_or(0.0)
    }

    /// Measured seconds of the batched suffix from `id` (all images).
    pub fn batched_suffix_secs(&self, id: NodeId) -> f64 {
        self.batched_suffix_s.get(id).copied().unwrap_or(0.0)
    }

    /// Measured seconds to build node `id`'s batched golden-input panel
    /// (zero when the node does not lower).
    pub fn panel_secs(&self, id: NodeId) -> f64 {
        self.panel_s.get(id).copied().unwrap_or(0.0)
    }

    /// Batch size the batched timings were measured at.
    pub fn images(&self) -> usize {
        self.images
    }
}

/// Result of a single-unit probe of the first dirty node on the batched
/// path (mirrors the per-image probe in [`Model::forward_from_converging`]).
enum BatchedProbe {
    /// No single-unit kernel for this node/op; fall back to full eval.
    Unsupported,
    /// Per-image probe verdicts: `clean[i]` — image `i`'s probed unit
    /// recomputed to golden bits (that image is provably golden from here
    /// on). `dirty` is the node's materialized batched activation
    /// restricted to the non-clean images (rows in ascending image order,
    /// golden clone with the probed unit overwritten per image), `None`
    /// when every image probed clean.
    Probed { clean: Vec<bool>, dirty: Option<Tensor> },
}

/// Outcome of a batched suffix execution
/// ([`CompiledPlan::forward_batched_from`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BatchedOutcome {
    /// Per-image converging outcome (`check_convergence` was set): each
    /// image either went bitwise-golden at `converged_at[i]` (its
    /// prediction provably equals the golden one, exactly as the per-image
    /// loop would conclude) or survived to the output — `logits` holds the
    /// survivors' rows in **ascending image order**, bit-identical to
    /// their per-image forward passes.
    Converging {
        /// Per image: the step its rows went golden with no live dirty
        /// values, `None` when it reached the output.
        converged_at: Vec<Option<NodeId>>,
        /// `[survivors, classes]` logits rows, ascending image order.
        logits: Vec<f32>,
        /// Row width of `logits`.
        classes: usize,
    },
    /// Batched logits, `[images, classes]`; per-image rows are
    /// bit-identical to the per-image forward passes.
    Logits(Tensor),
}

impl CompiledPlan {
    /// Compiles `model` against the activation shapes recorded in `cache`
    /// (any golden cache of the model — shapes, not values, are read; the
    /// batch dimension of the cache does not matter).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when `cache` does not cover the
    /// model's nodes.
    pub fn compile(model: &Model, cache: &ActivationCache) -> Result<Self, NnError> {
        let nodes = model.nodes();
        let n = nodes.len();
        if cache.len() != n {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "plan compile: cache holds {} activations, model has {n} nodes",
                    cache.len()
                ),
            });
        }
        let mut last_reader: Vec<NodeId> = (0..n).collect();
        let mut readers: Vec<u32> = vec![0; n];
        for (id, node) in nodes.iter().enumerate().skip(1) {
            for &inp in &node.inputs {
                last_reader[inp] = id;
                readers[inp] += 1;
            }
        }
        let mut flush: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for i in 1..n.saturating_sub(1) {
            flush[last_reader[i]].push(i);
        }
        let param = |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
        let mut cost = vec![StepCost::default(); n];
        let mut lowerable = vec![false; n];
        for (id, node) in nodes.iter().enumerate().skip(1) {
            let out = cache.get(id).expect("cache covers all nodes");
            let out_shape = out.shape();
            let out_elems: usize = out_shape.dims()[1..].iter().product();
            let flops = match &node.op {
                NodeOp::Conv { weight, cfg, .. } => {
                    let w = param(*weight);
                    let k_len: usize = w.shape().dims()[1..].iter().product();
                    let input = cache.get(node.inputs[0]).expect("cache covers all nodes");
                    lowerable[id] = ops::conv2d_uses_lowering(input, w, *cfg);
                    2 * k_len as u64 * out_elems as u64
                }
                NodeOp::Linear { weight, .. } => {
                    let w = param(*weight);
                    2 * w.shape().dims().iter().product::<usize>() as u64
                }
                NodeOp::BatchNorm { .. } => 2 * out_elems as u64,
                NodeOp::AvgPool { kernel } | NodeOp::MaxPool { kernel } => {
                    (kernel * kernel) as u64 * out_elems as u64
                }
                NodeOp::GlobalAvgPool => {
                    let input = cache.get(node.inputs[0]).expect("cache covers all nodes");
                    input.shape().dims()[1..].iter().product::<usize>() as u64
                }
                _ => out_elems as u64,
            };
            cost[id] = StepCost { flops, out_elems };
        }
        let mut suffix_flops = vec![0u64; n + 1];
        for id in (0..n).rev() {
            suffix_flops[id] = suffix_flops[id + 1] + cost[id].flops;
        }
        suffix_flops.pop();

        // Fusion grouping: conv -> bn (-> relu/relu6) chains whose
        // intermediates have exactly one reader, in consecutive id order
        // (how every builder emits them). Single-reader is what makes it
        // sound to never materialize the intermediate activations.
        let mut head = vec![None; n];
        let mut member = vec![None; n];
        let mut groups = Vec::new();
        for id in 1..n {
            if !lowerable[id] {
                continue;
            }
            if !matches!(nodes[id].op, NodeOp::Conv { .. }) {
                continue;
            }
            let Some(bn_node) = nodes.get(id + 1) else { continue };
            let NodeOp::BatchNorm { gamma, beta, mean, var, eps } = &bn_node.op else { continue };
            if bn_node.inputs != [id] || readers[id] != 1 {
                continue;
            }
            let bn = id + 1;
            let channels = cache.get(bn).expect("cache covers all nodes").shape().dims()[1];
            let params = BatchNormParams {
                gamma: param(*gamma),
                beta: param(*beta),
                mean: param(*mean),
                var: param(*var),
                eps: *eps,
            };
            let mut scale = Vec::with_capacity(channels);
            let mut shift = Vec::with_capacity(channels);
            for c in 0..channels {
                let (s, t) = ops::bn_channel_scale_shift(&params, c);
                scale.push(s);
                shift.push(t);
            }
            let act = nodes.get(bn + 1).and_then(|cand| {
                if cand.inputs != [bn] || readers[bn] != 1 {
                    return None;
                }
                match cand.op {
                    NodeOp::Relu => Some((bn + 1, FusedActivation::Relu)),
                    NodeOp::Relu6 => Some((bn + 1, FusedActivation::Relu6)),
                    _ => None,
                }
            });
            let (act_node, activation) = match act {
                Some((a, f)) => (Some(a), f),
                None => (None, FusedActivation::None),
            };
            let gi = groups.len();
            groups.push(FusedGroup { conv: id, bn, act: act_node, activation, scale, shift });
            head[id] = Some(gi);
            member[bn] = Some(gi);
            if let Some(a) = act_node {
                member[a] = Some(gi);
            }
        }
        Ok(Self {
            n_nodes: n,
            last_reader,
            flush,
            cost,
            suffix_flops,
            head,
            member,
            groups,
            lowerable,
            calibration: None,
        })
    }

    /// Measures per-node dense and batched execution costs against the
    /// campaign's own golden caches and attaches them to the plan,
    /// switching [`delta_profitable`](Self::delta_profitable) and
    /// [`batched_profitable`](Self::batched_profitable) from the static
    /// flop thresholds to measured wall-clock costs. `single` must be a
    /// one-image golden cache, `batched` the stacked eval-image cache.
    /// Every step takes the min of [`CALIBRATION_REPS`] repetitions after
    /// one warmup; fused groups are timed as the one fused kernel the
    /// batched engine actually runs, attributed to the head conv.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when either cache does not cover
    /// the model, or the first operator failure.
    pub fn calibrate(
        &mut self,
        model: &Model,
        single: &ActivationCache,
        batched: &ActivationCache,
    ) -> Result<(), NnError> {
        let n = self.n_nodes;
        if single.len() != n || batched.len() != n || model.nodes().len() != n {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "calibrate: plan covers {n} nodes, caches hold {}/{}",
                    single.len(),
                    batched.len()
                ),
            });
        }
        let images = batched.get(0).expect("cache covers all nodes").shape().dims()[0];
        let mut arena = ScratchArena::new();
        let empty: Vec<Tensor> = Vec::new();
        let mut dense_step = vec![0f64; n];
        for (id, step) in dense_step.iter_mut().enumerate().skip(1) {
            let mut best = f64::INFINITY;
            for rep in 0..=CALIBRATION_REPS {
                let vals = NodeValues {
                    prefix: single.activations(),
                    over: None,
                    multi: &[],
                    suffix_base: n,
                    suffix: &empty,
                };
                let mut opts =
                    ForwardOptions { arena: Some(&mut arena), ..ForwardOptions::default() };
                let t0 = Instant::now();
                let out = model.eval_node_with(id, &vals, &mut opts)?;
                let dt = t0.elapsed().as_secs_f64();
                arena.recycle(out.into_vec());
                if rep > 0 {
                    best = best.min(dt);
                }
            }
            *step = best;
        }
        let mut batched_step = vec![0f64; n];
        let rows: Vec<usize> = (0..images).collect();
        let mut id = 1;
        while id < n {
            let group = self.head[id].and_then(|gi| {
                let g = &self.groups[gi];
                (g.output() < n).then_some(g)
            });
            let out_node = group.map_or(id, FusedGroup::output);
            let mut best = f64::INFINITY;
            for rep in 0..=CALIBRATION_REPS {
                let t0 = Instant::now();
                let out = match group {
                    Some(g) => self.eval_fused(
                        model, g, n, batched, &empty, None, images, &rows, &mut arena,
                    )?,
                    None => self.eval_step(
                        model, id, n, batched, &empty, None, images, &rows, &mut arena,
                    )?,
                };
                let dt = t0.elapsed().as_secs_f64();
                arena.recycle(out.into_vec());
                if rep > 0 {
                    best = best.min(dt);
                }
            }
            batched_step[id] = best;
            id = out_node + 1;
        }
        // Per-node panel-build cost: the executor's session shares one
        // first-dirty panel across every same-stratum fault on a worker,
        // so dispatch prices the batched suffix *net* of this build.
        let mut panel_s = vec![0f64; n];
        for (id, slot) in panel_s.iter_mut().enumerate().skip(1) {
            if !self.is_lowerable_conv(id) {
                continue;
            }
            let NodeOp::Conv { weight, cfg, .. } = &model.nodes()[id].op else { continue };
            let w = &model.store().get(*weight).expect("validated at construction").tensor;
            let input_id = model.nodes()[id].inputs[0];
            let input = batched.get(input_id).ok_or_else(|| NnError::CacheMismatch {
                reason: format!("calibrate: batched cache misses node {input_id}"),
            })?;
            let mut best = f64::INFINITY;
            for rep in 0..=CALIBRATION_REPS {
                let t0 = Instant::now();
                let built = ops::im2col_lower_batched(input, w, *cfg, Some(&mut arena))
                    .map_err(|source| NnError::Op { node: id, source })?;
                let dt = t0.elapsed().as_secs_f64();
                arena.recycle(built.into_cols());
                if rep > 0 {
                    best = best.min(dt);
                }
            }
            *slot = best;
        }
        let mut dense_suffix_s = vec![0f64; n + 1];
        let mut batched_suffix_s = vec![0f64; n + 1];
        for id in (0..n).rev() {
            dense_suffix_s[id] = dense_suffix_s[id + 1] + dense_step[id];
            batched_suffix_s[id] = batched_suffix_s[id + 1] + batched_step[id];
        }
        dense_suffix_s.pop();
        batched_suffix_s.pop();
        self.calibration = Some(Calibration { dense_suffix_s, batched_suffix_s, panel_s, images });
        Ok(())
    }

    /// The measured calibration attached by [`calibrate`](Self::calibrate),
    /// when one ran.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.calibration.as_ref()
    }

    /// Number of nodes the plan covers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.n_nodes
    }

    /// Per-node last readers (tensor lifetime); `last_reader[i] == i` means
    /// nothing reads node `i`.
    pub fn last_reader(&self) -> &[NodeId] {
        &self.last_reader
    }

    /// Nodes whose activations die once step `id` has executed.
    pub fn flush_after(&self, id: NodeId) -> &[NodeId] {
        &self.flush[id]
    }

    /// Compile-time cost estimate of step `id`.
    pub fn step_cost(&self, id: NodeId) -> StepCost {
        self.cost[id]
    }

    /// Estimated dense flops (per image) of re-executing nodes `id..`.
    pub fn suffix_flops(&self, id: NodeId) -> u64 {
        self.suffix_flops.get(id).copied().unwrap_or(0)
    }

    /// Whether node `id` is a conv whose input lowers to im2col panels.
    pub fn is_lowerable_conv(&self, id: NodeId) -> bool {
        self.lowerable.get(id).copied().unwrap_or(false)
    }

    /// Number of conv+bn(+relu) fusion groups in the plan.
    pub fn fused_groups(&self) -> usize {
        self.groups.len()
    }

    /// The fusion group node `id` belongs to, as `(head conv, group
    /// output)`, when the plan fused it into one.
    pub fn fusion_of(&self, id: NodeId) -> Option<(NodeId, NodeId)> {
        let gi = self
            .head
            .get(id)
            .copied()
            .flatten()
            .or_else(|| self.member.get(id).copied().flatten())?;
        let g = &self.groups[gi];
        Some((g.conv, g.output()))
    }

    /// The compile-time delta-vs-dense decision for a *weight* fault whose
    /// first dirty node is `first_dirty`: sparse delta propagation is
    /// selected only when the dirty channel is wide enough to amortize the
    /// block-mask bookkeeping **and** the remaining dense suffix is
    /// expensive enough that skipping clean blocks can pay. On a calibrated
    /// plan the suffix floor is the *measured* dense-suffix wall-clock
    /// ([`DELTA_MIN_SUFFIX_SECS`]) — the `DELTA_MIN_SUFFIX_FLOPS` flop
    /// estimate excluded the entire full-scale ResNet-20 workload (every
    /// stratum of BENCH_delta.json recorded `sparse_nodes: 0`) because the
    /// whole-network suffix estimate sits just below the flop constant
    /// while its measured cost sits far above the real break-even.
    /// Uncalibrated plans keep the static thresholds.
    pub fn delta_profitable(&self, first_dirty: NodeId) -> bool {
        let Some(cost) = self.cost.get(first_dirty) else { return false };
        if cost.out_elems < DELTA_SEED_BREAK_EVEN_ELEMS {
            return false;
        }
        match &self.calibration {
            Some(cal) => cal.dense_suffix_secs(first_dirty) >= DELTA_MIN_SUFFIX_SECS,
            None => self.suffix_flops(first_dirty) >= DELTA_MIN_SUFFIX_FLOPS,
        }
    }

    /// The compile-time batched-vs-per-image decision for a fault whose
    /// first dirty node is `first_dirty`. On a calibrated plan the batched
    /// engine is selected when one measured batched suffix costs less than
    /// the dense per-image suffixes the per-image loop is expected to pay
    /// (`hedge * images`). The caller picks the hedge by how likely the
    /// fault is to mismatch: [`BATCHED_HEDGE_MISMATCH`] for sign/exponent
    /// flips (the per-image loop early-exits after one critical mismatch),
    /// [`BATCHED_HEDGE_CONVERGENT`] for mantissa flips (the loop pays
    /// nearly the full per-image bill). Because both sides are measured —
    /// including the batched pass's own panel-build and scatter overhead —
    /// a last-node fault whose suffix is one cheap classifier GEMM is no
    /// longer trivially batched: it is selected only if the batched row
    /// really beats the per-image rows, fixing the `suffix_flops <=
    /// BATCHED_MAX_SUFFIX_FLOPS` floor that was vacuously true near the
    /// output. Uncalibrated plans keep the static threshold.
    /// Classifications and inference counts are identical on both sides of
    /// the decision.
    pub fn batched_profitable(&self, first_dirty: NodeId, hedge: f64) -> bool {
        if first_dirty >= self.n_nodes {
            return false;
        }
        match &self.calibration {
            Some(cal) => {
                // Marginal cost: the session shares the first-dirty panel
                // across a stratum, so all but one fault skip its build.
                let marginal =
                    (cal.batched_suffix_secs(first_dirty) - cal.panel_secs(first_dirty)).max(0.0);
                marginal < hedge * cal.images as f64 * cal.dense_suffix_secs(first_dirty)
            }
            None => self.suffix_flops(first_dirty) <= BATCHED_MAX_SUFFIX_FLOPS,
        }
    }

    /// Runs the batched suffix from `first_dirty` over the stacked
    /// evaluation images: one fused GEMM per conv step for the whole batch
    /// instead of one per image. `cache` is the **batched** golden cache
    /// (built by running [`Model::forward_cached`] on the stacked images),
    /// `lowered` the batched im2col panels of the first dirty conv's golden
    /// input, and `dirty_unit` the one output unit the weight fault can
    /// reach (arming the batched single-unit probe).
    ///
    /// With `check_convergence` this is a **converging** pass: every step
    /// compares each surviving image's rows against the golden cache, and
    /// an image whose rows went bitwise-golden with no live dirty values is
    /// dropped out of the panel — all live suffix tensors are compacted to
    /// the surviving rows (`rows` keeps the row→image map), so later steps
    /// shrink as images converge, recovering per image exactly the early
    /// exit the per-image loop takes. Each image's convergence verdict and
    /// surviving logits row are bit-identical to its own per-image pass
    /// (see the module docs and DESIGN.md §5h for the argument); only the
    /// *step* at which convergence is detected may differ by up to one
    /// fusion group (the batched pass checks at group outputs), which
    /// affects the `nodes_skipped` telemetry and nothing else.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when the plan or cache does not
    /// match the model, or the first operator failure.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn forward_batched_from(
        &self,
        model: &Model,
        first_dirty: NodeId,
        cache: &ActivationCache,
        lowered: Option<&BatchedLowered>,
        dirty_unit: Option<usize>,
        check_convergence: bool,
        arena: &mut ScratchArena,
    ) -> Result<BatchedOutcome, NnError> {
        let n = self.n_nodes;
        if model.nodes().len() != n || cache.len() != n {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "batched forward: plan covers {n} nodes, model has {}, cache {}",
                    model.nodes().len(),
                    cache.len()
                ),
            });
        }
        let first_dirty = first_dirty.max(1);
        if first_dirty >= n {
            return Ok(BatchedOutcome::Logits(cache.get(n - 1).expect("nonempty").clone()));
        }
        let batch = cache.get(0).expect("cache covers all nodes").shape().dims()[0];
        let classes = cache.get(n - 1).expect("nonempty").len() / batch;
        // Per-image converging bookkeeping, indexed by ORIGINAL image id:
        // `rows[r]` maps the panel's surviving row `r` back to its image
        // (always ascending), `expiring[step * batch + img]` counts image
        // `img`'s dirty tensors whose last reader is `step`.
        let mut converged_at: Vec<Option<NodeId>> = vec![None; batch];
        let mut rows: Vec<usize> = (0..batch).collect();
        let mut expiring: Vec<u32> = vec![0; if check_convergence { n * batch } else { 0 }];
        let mut live_dirty: Vec<u32> = vec![0; batch];
        let mut fresh: Vec<Tensor> = Vec::with_capacity(n - first_dirty);
        let mut start = first_dirty;
        if check_convergence {
            if let Some(unit) = dirty_unit {
                match self.probe_batched(model, first_dirty, cache, lowered, unit, arena)? {
                    BatchedProbe::Unsupported => {}
                    BatchedProbe::Probed { clean, dirty } => {
                        for (img, c) in clean.iter().enumerate() {
                            if *c {
                                converged_at[img] = Some(first_dirty);
                            }
                        }
                        rows.retain(|&img| !clean[img]);
                        let Some(t) = dirty else {
                            return Ok(BatchedOutcome::Converging {
                                converged_at,
                                logits: Vec::new(),
                                classes,
                            });
                        };
                        let lr = self.last_reader[first_dirty];
                        if lr > first_dirty {
                            for &img in &rows {
                                expiring[lr * batch + img] += 1;
                                live_dirty[img] += 1;
                            }
                        }
                        fresh.push(t);
                        start = first_dirty + 1;
                    }
                }
            }
        }
        let placeholder = || Tensor::zeros([1]);
        let mut id = start;
        while id < n {
            // A fused group executes whole only when the suffix enters at
            // (or before) its head; a mid-group suffix start runs the
            // remaining members unfused (the suffix-start transform splits
            // the group).
            let group = self.head[id].map(|gi| &self.groups[gi]);
            let (out_node, mut value) = match group {
                Some(g) if g.output() < n => {
                    let v = self.eval_fused(
                        model,
                        g,
                        first_dirty,
                        cache,
                        &fresh,
                        lowered,
                        batch,
                        &rows,
                        arena,
                    )?;
                    (g.output(), v)
                }
                _ => {
                    let v = self.eval_step(
                        model,
                        id,
                        first_dirty,
                        cache,
                        &fresh,
                        lowered,
                        batch,
                        &rows,
                        arena,
                    )?;
                    (id, v)
                }
            };
            if check_convergence {
                let golden = cache.get(out_node).expect("cache covers all nodes");
                let chunk = golden.len() / batch;
                let gbits = golden.as_slice();
                let vbits = value.as_slice();
                let lr = self.last_reader[out_node];
                // Surviving row indices into the current panel width.
                let mut keep: Vec<usize> = Vec::with_capacity(rows.len());
                for (r, &img) in rows.iter().enumerate() {
                    // The steps id..=out_node have now read their inputs:
                    // this image's dirty values last read inside the group
                    // can no longer spread.
                    for step in id..=out_node {
                        live_dirty[img] -= expiring[step * batch + img];
                    }
                    let clean =
                        bits_eq(&vbits[r * chunk..][..chunk], &gbits[img * chunk..][..chunk]);
                    if clean && live_dirty[img] == 0 {
                        converged_at[img] = Some(out_node);
                        continue;
                    }
                    if !clean && lr > out_node {
                        expiring[lr * batch + img] += 1;
                        live_dirty[img] += 1;
                    }
                    keep.push(r);
                }
                if keep.len() < rows.len() {
                    if keep.is_empty() {
                        arena.recycle(value.into_vec());
                        for t in fresh {
                            if t.len() > 1 {
                                arena.recycle(t.into_vec());
                            }
                        }
                        return Ok(BatchedOutcome::Converging {
                            converged_at,
                            logits: Vec::new(),
                            classes,
                        });
                    }
                    // Compact the new value AND every live suffix tensor to
                    // the surviving rows, so all live tensors always agree
                    // on the panel width (skip connections may read tensors
                    // produced many compactions apart).
                    let kept = take_rows(&value, &keep, arena);
                    arena.recycle(value.into_vec());
                    value = kept;
                    for slot in fresh.iter_mut() {
                        if slot.len() > 1 {
                            let old = std::mem::replace(slot, placeholder());
                            let kept = take_rows(&old, &keep, arena);
                            arena.recycle(old.into_vec());
                            *slot = kept;
                        }
                    }
                    rows = keep.iter().map(|&r| rows[r]).collect();
                }
            }
            // Fused-away intermediates occupy their suffix slots with
            // placeholders; the single-reader fusion condition guarantees
            // nothing outside the group reads them.
            for _ in id..out_node {
                fresh.push(placeholder());
            }
            fresh.push(value);
            // Flush activations whose last reader has now run.
            for step in id..=out_node {
                for &dead in &self.flush[step] {
                    if dead >= first_dirty && dead < out_node {
                        let slot = dead - first_dirty;
                        if slot < fresh.len() && fresh[slot].len() > 1 {
                            let t = std::mem::replace(&mut fresh[slot], placeholder());
                            arena.recycle(t.into_vec());
                        }
                    }
                }
            }
            id = out_node + 1;
        }
        let out = fresh.pop().expect("suffix is nonempty");
        for t in fresh {
            if t.len() > 1 {
                arena.recycle(t.into_vec());
            }
        }
        if check_convergence {
            Ok(BatchedOutcome::Converging { converged_at, logits: out.into_vec(), classes })
        } else {
            Ok(BatchedOutcome::Logits(out))
        }
    }

    /// Evaluates one fused conv+bn(+relu) group over the batched values:
    /// one register-tiled GEMM per conv group (the interleaved
    /// `images * spatial` panels are exactly the wide-`n` shapes the
    /// `micro` dispatch tier owns), bias + folded BN + activation
    /// applied in the scatter epilogue (bit-identical to the unfused
    /// three-pass sequence — see the module docs). When the converging
    /// pass has dropped images (`rows.len() < batch`), golden prefix
    /// inputs are compacted to the surviving rows before lowering.
    #[allow(clippy::too_many_arguments)]
    fn eval_fused(
        &self,
        model: &Model,
        g: &FusedGroup,
        first_dirty: NodeId,
        cache: &ActivationCache,
        fresh: &[Tensor],
        lowered: Option<&BatchedLowered>,
        batch: usize,
        rows: &[usize],
        arena: &mut ScratchArena,
    ) -> Result<Tensor, NnError> {
        let node = &model.nodes()[g.conv];
        let NodeOp::Conv { weight, bias, cfg } = &node.op else {
            unreachable!("fusion heads are conv nodes");
        };
        let param = |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
        let w = param(*weight);
        let b = bias.map(&param);
        let wrap = |source| NnError::Op { node: g.conv, source };
        let ep = ConvEpilogue { bn: Some((&g.scale, &g.shift)), act: g.activation };
        let out = match lowered {
            // The first dirty conv's golden-input panel is shared across
            // every fault at this node; the converging pass only evaluates
            // the seed node while all rows are still live, so the panel
            // never needs compaction.
            Some(low) if g.conv == first_dirty && rows.len() == batch => {
                ops::conv2d_batched_from_lowered(low, w, b, Some(&ep), Some(arena)).map_err(wrap)?
            }
            _ => {
                let raw = value_of(node.inputs[0], first_dirty, cache, fresh);
                let compacted = (node.inputs[0] < first_dirty && rows.len() < batch)
                    .then(|| take_rows(raw, rows, arena));
                let input = compacted.as_ref().unwrap_or(raw);
                let owned = ops::im2col_lower_batched(input, w, *cfg, Some(arena)).map_err(wrap)?;
                let out = ops::conv2d_batched_from_lowered(&owned, w, b, Some(&ep), Some(arena))
                    .map_err(wrap)?;
                arena.recycle(owned.into_cols());
                if let Some(c) = compacted {
                    arena.recycle(c.into_vec());
                }
                out
            }
        };
        Ok(out)
    }

    /// Evaluates one unfused plan step over the batched values. Lowerable
    /// convs still take the batched single-GEMM path (without an epilogue);
    /// everything else dispatches through the model's fast per-op kernels,
    /// which treat the batch dimension natively. Golden prefix inputs are
    /// compacted to the surviving rows when the converging pass has
    /// dropped images.
    #[allow(clippy::too_many_arguments)]
    fn eval_step(
        &self,
        model: &Model,
        id: NodeId,
        first_dirty: NodeId,
        cache: &ActivationCache,
        fresh: &[Tensor],
        lowered: Option<&BatchedLowered>,
        batch: usize,
        rows: &[usize],
        arena: &mut ScratchArena,
    ) -> Result<Tensor, NnError> {
        let node = &model.nodes()[id];
        if self.lowerable[id] {
            if let NodeOp::Conv { weight, bias, cfg } = &node.op {
                let param =
                    |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
                let w = param(*weight);
                let b = bias.map(&param);
                let wrap = |source| NnError::Op { node: id, source };
                let out = match lowered {
                    Some(low) if id == first_dirty && rows.len() == batch => {
                        ops::conv2d_batched_from_lowered(low, w, b, None, Some(arena))
                            .map_err(wrap)?
                    }
                    _ => {
                        let raw = value_of(node.inputs[0], first_dirty, cache, fresh);
                        let compacted = (node.inputs[0] < first_dirty && rows.len() < batch)
                            .then(|| take_rows(raw, rows, arena));
                        let input = compacted.as_ref().unwrap_or(raw);
                        let owned =
                            ops::im2col_lower_batched(input, w, *cfg, Some(arena)).map_err(wrap)?;
                        let out = ops::conv2d_batched_from_lowered(&owned, w, b, None, Some(arena))
                            .map_err(wrap)?;
                        arena.recycle(owned.into_cols());
                        if let Some(c) = compacted {
                            arena.recycle(c.into_vec());
                        }
                        out
                    }
                };
                return Ok(out);
            }
        }
        // Generic path: golden prefix inputs this node reads are shadowed
        // with row-compacted copies via the `multi` override, so every
        // operand agrees on the surviving panel width.
        let mut over_rows: Vec<(NodeId, Tensor)> = Vec::new();
        if rows.len() < batch {
            for &inp in &node.inputs {
                if inp < first_dirty && !over_rows.iter().any(|(held, _)| *held == inp) {
                    let golden = cache.get(inp).expect("cache covers all nodes");
                    over_rows.push((inp, take_rows(golden, rows, arena)));
                }
            }
        }
        let vals = NodeValues {
            prefix: cache.activations(),
            over: None,
            multi: &over_rows,
            suffix_base: first_dirty,
            suffix: fresh,
        };
        let mut opts = ForwardOptions { arena: Some(arena), ..ForwardOptions::default() };
        let out = model.eval_node_with(id, &vals, &mut opts);
        for (_, t) in over_rows {
            arena.recycle(t.into_vec());
        }
        out
    }

    /// Batched single-unit probe of the first dirty node: evaluates only
    /// the faulted output unit for **all** images with one GEMM row over
    /// the batched panel, and compares it against the batched golden
    /// activation bit-for-bit.
    fn probe_batched(
        &self,
        model: &Model,
        id: NodeId,
        cache: &ActivationCache,
        lowered: Option<&BatchedLowered>,
        unit: usize,
        arena: &mut ScratchArena,
    ) -> Result<BatchedProbe, NnError> {
        let node = &model.nodes()[id];
        let param = |p: ParamId| &model.store().get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let golden = cache.get(id).expect("cache covers all nodes");
        let vals: Vec<f32> = match &node.op {
            NodeOp::Conv { weight, bias, .. } => {
                let Some(low) = lowered else { return Ok(BatchedProbe::Unsupported) };
                let w = param(*weight);
                if unit >= w.shape().n() {
                    return Ok(BatchedProbe::Unsupported);
                }
                ops::conv2d_channel_batched(low, w, bias.map(&param), unit, Some(arena))
                    .map_err(wrap)?
            }
            NodeOp::Linear { weight, bias } => {
                let xv = cache.get(node.inputs[0]).expect("cache covers all nodes");
                let reshaped;
                let x2 = if xv.shape().rank() == 2 {
                    xv
                } else {
                    let b = xv.shape().dims()[0];
                    let rest = xv.len() / b;
                    reshaped = xv.reshape([b, rest]).map_err(wrap)?;
                    &reshaped
                };
                let w = param(*weight);
                if unit >= w.shape().dims()[0] {
                    return Ok(BatchedProbe::Unsupported);
                }
                ops::linear_row(x2, w, bias.map(&param), unit).map_err(wrap)?
            }
            _ => return Ok(BatchedProbe::Unsupported),
        };
        let shape = golden.shape();
        let dims = shape.dims();
        let (batch, units) = (dims[0], dims[1]);
        let chunk: usize = dims[2..].iter().product();
        let g = golden.as_slice();
        let clean: Vec<bool> = (0..batch)
            .map(|n| {
                let gs = &g[(n * units + unit) * chunk..][..chunk];
                let vs = &vals[n * chunk..][..chunk];
                bits_eq(gs, vs)
            })
            .collect();
        let survivors: Vec<usize> = (0..batch).filter(|&n| !clean[n]).collect();
        if survivors.is_empty() {
            arena.recycle(vals);
            return Ok(BatchedProbe::Probed { clean, dirty: None });
        }
        // Materialize the node's activation for the dirty images only:
        // their golden rows with the probed unit overwritten, already
        // compacted to the surviving panel width.
        let row = units * chunk;
        let mut data = arena.take(survivors.len() * row);
        for (r, &img) in survivors.iter().enumerate() {
            let dst = &mut data[r * row..][..row];
            dst.copy_from_slice(&g[img * row..][..row]);
            dst[unit * chunk..][..chunk].copy_from_slice(&vals[img * chunk..][..chunk]);
        }
        arena.recycle(vals);
        let mut nd = dims.to_vec();
        nd[0] = survivors.len();
        let t = Tensor::from_vec(Shape::new(&nd), data)
            .expect("materialized activation matches golden row shape");
        Ok(BatchedProbe::Probed { clean, dirty: Some(t) })
    }
}

/// Bitwise f32 slice equality (NaN payloads included), the element-level
/// form of [`Tensor::bits_equal`].
fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Copies the given leading-axis rows of `t` into a new arena-backed
/// tensor, preserving the per-row layout. The converging batched pass uses
/// this both to drop converged images out of live suffix tensors (`keep` =
/// surviving row indices) and to shrink full-batch golden prefix inputs to
/// the surviving images (`keep` = image ids).
fn take_rows(t: &Tensor, keep: &[usize], arena: &mut ScratchArena) -> Tensor {
    let shape = t.shape();
    let dims = shape.dims();
    let chunk: usize = dims[1..].iter().product();
    let src = t.as_slice();
    let mut data = arena.take(keep.len() * chunk);
    for (r, &row) in keep.iter().enumerate() {
        data[r * chunk..][..chunk].copy_from_slice(&src[row * chunk..][..chunk]);
    }
    let mut nd = dims.to_vec();
    nd[0] = keep.len();
    Tensor::from_vec(Shape::new(&nd), data).expect("row subset preserves the element count")
}

/// Resolves a node reference during a batched suffix: cached golden values
/// for the prefix, freshly computed values for the suffix.
fn value_of<'a>(
    id: NodeId,
    first_dirty: NodeId,
    cache: &'a ActivationCache,
    fresh: &'a [Tensor],
) -> &'a Tensor {
    if id >= first_dirty {
        &fresh[id - first_dirty]
    } else {
        cache.get(id).expect("cache covers all nodes")
    }
}

/// NaN-aware argmax over one logits row, identical to
/// [`Tensor::argmax`](sfi_tensor::Tensor::argmax) on a single-image tensor:
/// NaNs are skipped unless the whole row is NaN (then index 0 wins), ties
/// keep the first maximum.
pub fn row_argmax(row: &[f32]) -> Option<usize> {
    if row.is_empty() {
        return None;
    }
    Some(crate::model::argmax_slice(row))
}

/// Reusable per-worker session state: the scratch arena, a high-water
/// mark shared across every worker of a campaign session (so telemetry
/// reports one session-wide arena peak instead of summing — and
/// double-counting — per-worker figures), and a single-slot cache of the
/// batched im2col panel of one conv node's golden input. Faults are
/// dispatched deepest-first within a stratum, so every fault sharing a
/// first dirty conv lands adjacent on one worker and the single slot
/// captures nearly all panel reuse while bounding memory to one panel per
/// worker (the former campaign-wide prebuilt panel map held every conv's
/// panel for the whole run).
#[derive(Debug, Default)]
pub struct SessionState {
    /// The worker's scratch arena; persists across faults and campaigns.
    pub arena: ScratchArena,
    shared_peak: Option<Arc<AtomicU64>>,
    /// The one batched golden-input panel this worker currently holds.
    panel: Option<(NodeId, BatchedLowered)>,
}

impl SessionState {
    /// A fresh state with a private arena and no shared peak.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh state publishing its arena peak into `peak` (shared by
    /// every worker of one session).
    pub fn with_shared_peak(peak: Arc<AtomicU64>) -> Self {
        Self { arena: ScratchArena::new(), shared_peak: Some(peak), panel: None }
    }

    /// Ensures the panel slot holds the batched im2col panel of `node`'s
    /// golden input (from the batched golden `cache`), building it into
    /// this worker's arena when absent. Returns `true` when the held panel
    /// was reused (a sharing hit), `false` when it was (re)built or the
    /// node does not lower. The faulty weight values never enter the
    /// panel — lowering reads only the node's *input* activation and the
    /// kernel geometry — so one panel serves every fault at the node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CacheMismatch`] when the cache misses the node's
    /// input, or the lowering kernel's first failure.
    pub fn ensure_panel(
        &mut self,
        model: &Model,
        plan: &CompiledPlan,
        cache: &ActivationCache,
        node: NodeId,
    ) -> Result<bool, NnError> {
        if !plan.is_lowerable_conv(node) {
            return Ok(false);
        }
        if self.panel.as_ref().is_some_and(|(held, _)| *held == node) {
            return Ok(true);
        }
        let NodeOp::Conv { weight, cfg, .. } = &model.nodes()[node].op else {
            return Ok(false);
        };
        let w = &model.store().get(*weight).expect("validated at construction").tensor;
        let input_id = model.nodes()[node].inputs[0];
        let input = cache.get(input_id).ok_or_else(|| NnError::CacheMismatch {
            reason: format!("panel build: batched cache misses node {input_id}"),
        })?;
        if let Some((_, old)) = self.panel.take() {
            self.arena.recycle(old.into_cols());
        }
        let built = ops::im2col_lower_batched(input, w, *cfg, Some(&mut self.arena))
            .map_err(|source| NnError::Op { node, source })?;
        self.panel = Some((node, built));
        Ok(false)
    }

    /// Splits the state into the arena and the panel held for `node` (if
    /// any), so a batched forward can borrow both at once.
    pub fn arena_and_panel(
        &mut self,
        node: NodeId,
    ) -> (&mut ScratchArena, Option<&BatchedLowered>) {
        let panel = match &self.panel {
            Some((held, p)) if *held == node => Some(p),
            _ => None,
        };
        (&mut self.arena, panel)
    }

    /// Publishes the arena's current high-water mark into the shared
    /// session peak (monotone `max`), returning the session-wide value.
    pub fn publish_peak(&self) -> u64 {
        let mine = self.arena.peak_bytes() as u64;
        match &self.shared_peak {
            Some(shared) => {
                shared.fetch_max(mine, Ordering::Relaxed);
                shared.load(Ordering::Relaxed)
            }
            None => mine,
        }
    }

    /// The session-wide arena high-water mark (this worker's own peak when
    /// no shared counter was attached).
    pub fn high_water(&self) -> u64 {
        match &self.shared_peak {
            Some(shared) => shared.load(Ordering::Relaxed).max(self.arena.peak_bytes() as u64),
            None => self.arena.peak_bytes() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;

    fn setup() -> (Model, ActivationCache, CompiledPlan) {
        let model = ResNetConfig::resnet20_micro().build_seeded(7).unwrap();
        let input = Tensor::from_fn([1, 3, 16, 16], |i| (i as f32 * 0.37).sin());
        let cache = model.forward_cached(&input).unwrap();
        let plan = CompiledPlan::compile(&model, &cache).unwrap();
        (model, cache, plan)
    }

    #[test]
    fn compile_covers_every_node_and_orders_lifetimes() {
        let (model, _, plan) = setup();
        assert_eq!(plan.len(), model.nodes().len());
        for (i, &lr) in plan.last_reader().iter().enumerate() {
            assert!(lr >= i, "a reader never precedes its producer");
        }
        // Every non-final node dies exactly once across the flush lists.
        let mut flushed = vec![0usize; plan.len()];
        for id in 0..plan.len() {
            for &dead in plan.flush_after(id) {
                flushed[dead] += 1;
            }
        }
        for (i, &count) in flushed.iter().enumerate().skip(1) {
            if i < plan.len() - 1 {
                assert_eq!(count, 1, "node {i} must be flushed exactly once");
            }
        }
    }

    #[test]
    fn fusion_groups_cover_conv_bn_relu_chains() {
        let (model, _, plan) = setup();
        assert!(plan.fused_groups() > 0, "resnet emits conv+bn+relu chains");
        // Group heads are lowerable convs.
        for (id, node) in model.nodes().iter().enumerate() {
            if plan.head.get(id).copied().flatten().is_some() {
                assert!(matches!(node.op, NodeOp::Conv { .. }));
                assert!(plan.is_lowerable_conv(id));
            }
        }
    }

    #[test]
    fn suffix_flops_monotone_decreasing() {
        let (_, _, plan) = setup();
        for id in 1..plan.len() {
            assert!(plan.suffix_flops(id - 1) >= plan.suffix_flops(id));
        }
        assert!(plan.suffix_flops(1) > 0);
    }

    #[test]
    fn delta_unprofitable_at_micro_scale() {
        let (_, _, plan) = setup();
        // The micro model's widest activation is far below the break-even
        // channel width; the cost model must keep every node dense.
        for id in 1..plan.len() {
            assert!(!plan.delta_profitable(id));
        }
    }

    #[test]
    fn batched_forward_matches_per_image_bitwise() {
        let (model, _, _) = setup();
        let images: Vec<Tensor> = (0..3)
            .map(|s| Tensor::from_fn([1, 3, 16, 16], |i| ((i + s * 31) as f32 * 0.21).cos()))
            .collect();
        let mut stacked = Vec::new();
        for img in &images {
            stacked.extend_from_slice(img.as_slice());
        }
        let batched_input = Tensor::from_vec([3, 3, 16, 16], stacked).unwrap();
        let bcache = model.forward_cached(&batched_input).unwrap();
        let plan = CompiledPlan::compile(&model, &bcache).unwrap();
        let mut arena = ScratchArena::new();
        // Re-run the whole graph batched (suffix start = 1, no probe, no
        // convergence) and compare per-image rows to per-image passes.
        let out =
            plan.forward_batched_from(&model, 1, &bcache, None, None, false, &mut arena).unwrap();
        let BatchedOutcome::Logits(logits) = out else { panic!("no convergence requested") };
        let classes = logits.len() / 3;
        for (i, img) in images.iter().enumerate() {
            let per_image = model.forward(img).unwrap();
            let row = &logits.as_slice()[i * classes..][..classes];
            for (a, b) in row.iter().zip(per_image.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "image {i}");
            }
        }
    }

    #[test]
    fn batched_convergence_detects_golden_recompute() {
        let (model, _, _) = setup();
        let input = Tensor::from_fn([2, 3, 16, 16], |i| (i as f32 * 0.11).sin());
        let bcache = model.forward_cached(&input).unwrap();
        let plan = CompiledPlan::compile(&model, &bcache).unwrap();
        let mut arena = ScratchArena::new();
        // Nothing is dirty: recomputing from node 1 must converge every
        // image with no surviving logits rows.
        let out =
            plan.forward_batched_from(&model, 1, &bcache, None, None, true, &mut arena).unwrap();
        let BatchedOutcome::Converging { converged_at, logits, .. } = out else {
            panic!("convergence was requested");
        };
        assert_eq!(converged_at.len(), 2);
        assert!(converged_at.iter().all(Option::is_some), "golden recompute converges everywhere");
        assert!(logits.is_empty(), "no image survives to the output");
    }

    #[test]
    fn calibration_switches_dispatch_to_measured_costs() {
        let (model, cache, mut plan) = setup();
        assert!(plan.calibration().is_none());
        let input = Tensor::from_fn([2, 3, 16, 16], |i| (i as f32 * 0.11).sin());
        let bcache = model.forward_cached(&input).unwrap();
        plan.calibrate(&model, &cache, &bcache).unwrap();
        let cal = plan.calibration().expect("calibration attached");
        assert_eq!(cal.images(), 2);
        // Suffix costs are monotone decreasing, like the flop estimates.
        for id in 2..plan.len() {
            assert!(cal.dense_suffix_secs(id - 1) >= cal.dense_suffix_secs(id));
            assert!(cal.batched_suffix_secs(id - 1) >= cal.batched_suffix_secs(id));
        }
        assert!(cal.dense_suffix_secs(1) > 0.0, "a real suffix takes nonzero time");
        // The micro model still keeps every node dense on the delta side:
        // its widest activation is far below the seed break-even, which the
        // measured floor does not relax.
        for id in 1..plan.len() {
            assert!(!plan.delta_profitable(id));
        }
    }

    #[test]
    fn session_state_panel_slot_hits_on_repeat_node() {
        let (model, _, _) = setup();
        let input = Tensor::from_fn([2, 3, 16, 16], |i| (i as f32 * 0.13).cos());
        let bcache = model.forward_cached(&input).unwrap();
        let plan = CompiledPlan::compile(&model, &bcache).unwrap();
        let conv = (1..plan.len()).find(|&id| plan.is_lowerable_conv(id)).expect("has convs");
        let other = (conv + 1..plan.len()).find(|&id| plan.is_lowerable_conv(id)).unwrap();
        let mut session = SessionState::new();
        assert!(!session.ensure_panel(&model, &plan, &bcache, conv).unwrap(), "first build");
        assert!(session.ensure_panel(&model, &plan, &bcache, conv).unwrap(), "repeat hits");
        let (_, panel) = session.arena_and_panel(conv);
        assert!(panel.is_some());
        let (_, wrong) = session.arena_and_panel(other);
        assert!(wrong.is_none(), "slot is keyed by node");
        assert!(!session.ensure_panel(&model, &plan, &bcache, other).unwrap(), "rebuild on switch");
        let (_, panel) = session.arena_and_panel(other);
        assert!(panel.is_some());
    }

    #[test]
    fn session_state_publishes_shared_peak() {
        let shared = Arc::new(AtomicU64::new(0));
        let mut a = SessionState::with_shared_peak(Arc::clone(&shared));
        let mut b = SessionState::with_shared_peak(Arc::clone(&shared));
        let buf = a.arena.take(1000);
        a.arena.recycle(buf);
        let buf = b.arena.take(10);
        b.arena.recycle(buf);
        a.publish_peak();
        b.publish_peak();
        assert_eq!(shared.load(Ordering::Relaxed), 4000);
        assert_eq!(b.high_water(), 4000, "peers see the session-wide peak");
    }

    #[test]
    fn row_argmax_matches_tensor_argmax() {
        let t = Tensor::from_vec([1, 4], vec![0.5, f32::NAN, 2.0, 2.0]).unwrap();
        assert_eq!(row_argmax(t.as_slice()), t.argmax());
        assert_eq!(row_argmax(&[]), None);
    }
}
