//! CNN model graphs, parameter stores, and the two case-study topologies of
//! the DATE 2023 SFI paper.
//!
//! The crate provides:
//!
//! - [`ParameterStore`] — flat, named storage of every tensor a model owns,
//!   with *fault-injectable* weight parameters (convolution and linear
//!   weights) indexed by **weight layer** exactly as the paper's Tables I
//!   and II count them;
//! - [`Model`] — a topologically ordered operator graph with plain
//!   [`forward`](Model::forward) inference, cached inference
//!   ([`forward_cached`](Model::forward_cached)) and *incremental
//!   re-execution* ([`forward_from`](Model::forward_from)) that recomputes
//!   only from the first node affected by a weight fault — the key
//!   optimisation that makes million-fault campaigns tractable;
//! - [`resnet`] / [`mobilenet`] — CIFAR-10 builders for **ResNet-20**
//!   (20 weight layers, 268,336 weights) and **MobileNetV2** (54 weight
//!   layers, 2,203,584 weights), with width multipliers for reduced-scale
//!   exhaustive experiments;
//! - [`init`] — deterministic, seeded weight initialisation whose
//!   distributions match the shape of trained CNN weights (zero-mean,
//!   fan-in-scaled), which is what the paper's data-aware analysis
//!   consumes.
//!
//! # Example
//!
//! ```
//! use sfi_nn::resnet::ResNetConfig;
//! use sfi_tensor::Tensor;
//!
//! # fn main() -> Result<(), sfi_nn::NnError> {
//! let model = ResNetConfig::resnet20().build_seeded(42)?;
//! assert_eq!(model.weight_layers().len(), 20);
//! let logits = model.forward(&Tensor::zeros([1, 3, 32, 32]))?;
//! assert_eq!(logits.shape().dims(), &[1, 10]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod delta;
mod error;
mod model;
mod node;
mod param;

pub mod init;
pub mod mobilenet;
pub mod plan;
pub mod resnet;
pub mod train;
pub mod vgg;

pub use delta::{DeltaOptions, DeltaStats, DELTA_SATURATION_DEFAULT};
pub use error::NnError;
pub use model::{
    ActPatch, ActivationCache, ForwardOptions, ForwardOutcome, KernelPolicy, LayerStats, Model,
};
pub use node::{Node, NodeId, NodeOp};
pub use param::{ParamId, ParamKind, Parameter, ParameterStore, WeightLayer};
pub use plan::{
    BatchedOutcome, CompiledPlan, SessionState, StepCost, BATCHED_HEDGE_CONVERGENT,
    BATCHED_HEDGE_MISMATCH,
};
