//! VGG-style plain CNNs — the paper's "different architectures" future
//! work.
//!
//! VGG (Simonyan & Zisserman 2015) is the classic plain stack: stages of
//! 3×3 convolutions with batch norm and ReLU, a 2× max pool after each
//! stage, global average pooling, and a linear classifier. No residual
//! connections — which makes it a useful contrast case for fault
//! propagation studies (no shortcut can route around a corrupted stage).

use serde::{Deserialize, Serialize};

use sfi_tensor::ops::Conv2dCfg;

use crate::builder::GraphBuilder;
use crate::{init, Model, NnError};

/// Configuration of a VGG-style network.
///
/// # Example
///
/// ```
/// use sfi_nn::vgg::VggConfig;
///
/// let model = VggConfig::vgg11().build().unwrap();
/// // VGG-11: 8 convolutions + 1 classifier = 9 weight layers.
/// assert_eq!(model.weight_layers().len(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VggConfig {
    /// Stages as `(convolutions, channels)`; a 2× max pool follows each.
    pub stages: Vec<(usize, usize)>,
    /// Number of output classes.
    pub classes: usize,
    /// Input spatial size; must be divisible by `2^stages`.
    pub input_size: usize,
}

impl VggConfig {
    /// The CIFAR adaptation of VGG-11: stages
    /// `64 / 128 / 256×2 / 512×2 / 512×2`, GAP head.
    pub fn vgg11() -> Self {
        Self {
            stages: vec![(1, 64), (1, 128), (2, 256), (2, 512), (2, 512)],
            classes: 10,
            input_size: 32,
        }
    }

    /// A reduced variant for exhaustive fault-injection experiments:
    /// three narrow stages on 16×16 inputs.
    pub fn vgg_micro() -> Self {
        Self { stages: vec![(1, 4), (1, 8), (2, 16)], classes: 10, input_size: 16 }
    }

    /// Builds the model with zeroed parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty stage list, zero channels/classes, or
    /// an input size the pooling chain cannot divide.
    pub fn build(&self) -> Result<Model, NnError> {
        if self.stages.is_empty() || self.classes == 0 {
            return Err(NnError::InvalidGraph {
                reason: "need at least one stage and one class".into(),
            });
        }
        if self.stages.iter().any(|&(convs, ch)| convs == 0 || ch == 0) {
            return Err(NnError::InvalidGraph {
                reason: "every stage needs nonzero convolutions and channels".into(),
            });
        }
        let divisor = 1usize << self.stages.len();
        if self.input_size == 0 || !self.input_size.is_multiple_of(divisor) {
            return Err(NnError::InvalidGraph {
                reason: format!(
                    "input size {} must be divisible by 2^{} = {divisor}",
                    self.input_size,
                    self.stages.len()
                ),
            });
        }
        let mut b = GraphBuilder::new();
        let mut x = 0;
        let mut c_in = 3usize;
        for (si, &(convs, channels)) in self.stages.iter().enumerate() {
            for conv in 0..convs {
                let name = format!("stage{si}.conv{conv}");
                x = b.conv(&name, x, c_in, channels, 3, Conv2dCfg::same(1));
                x = b.batch_norm(&format!("stage{si}.bn{conv}"), x, channels);
                x = b.relu(x);
                c_in = channels;
            }
            x = b.max_pool(x, 2);
        }
        x = b.global_avg_pool(x);
        let _ = b.linear("fc", x, c_in, self.classes);
        b.finish(
            format!("vgg{}", self.stages.iter().map(|s| s.0).sum::<usize>() + 1),
            vec![3, self.input_size, self.input_size],
        )
    }

    /// Builds the model and initialises every parameter from `seed`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VggConfig::build`].
    pub fn build_seeded(&self, seed: u64) -> Result<Model, NnError> {
        let mut model = self.build()?;
        init::initialize_seeded(model.store_mut(), seed);
        Ok(model)
    }
}

impl Default for VggConfig {
    fn default() -> Self {
        Self::vgg11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_tensor::Tensor;

    #[test]
    fn vgg11_structure() {
        let m = VggConfig::vgg11().build().unwrap();
        let layers = m.weight_layers();
        assert_eq!(layers.len(), 9);
        assert_eq!(layers[0].len, 3 * 64 * 9);
        assert_eq!(layers[8].len, 512 * 10);
        // Plain chain: no Add nodes.
        assert!(!m.nodes().iter().any(|n| matches!(n.op, crate::NodeOp::Add)));
        // Five max pools.
        let pools =
            m.nodes().iter().filter(|n| matches!(n.op, crate::NodeOp::MaxPool { .. })).count();
        assert_eq!(pools, 5);
    }

    #[test]
    fn micro_variant_forward_and_faults() {
        let m = VggConfig::vgg_micro().build_seeded(3).unwrap();
        let out = m.forward(&Tensor::full([1, 3, 16, 16], 0.2)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
        assert!(out.iter().all(f32::is_finite));
        assert_eq!(m.weight_layers().len(), 5);
    }

    #[test]
    fn incremental_reexec_holds_for_vgg() {
        let mut m = VggConfig::vgg_micro().build_seeded(3).unwrap();
        let input = Tensor::from_fn([1, 3, 16, 16], |i| ((i % 23) as f32) * 0.05 - 0.5);
        let cache = m.forward_cached(&input).unwrap();
        let info = m.weight_layers()[2].clone();
        let node = m.node_of_param(info.param).unwrap();
        m.store_mut().get_mut(info.param).unwrap().tensor.as_mut_slice()[7] = 3.0;
        let incremental = m.forward_from(node, &cache).unwrap();
        let full = m.forward(&input).unwrap();
        assert!(incremental.max_abs_diff(&full).unwrap() < 1e-5);
    }

    #[test]
    fn vgg_trains_on_a_toy_task() {
        use crate::train::{fit, SgdConfig, TrainConfig};
        let mut m = VggConfig { stages: vec![(1, 4), (1, 8)], classes: 2, input_size: 8 }
            .build_seeded(4)
            .unwrap();
        let images: Vec<Tensor> = (0..8)
            .map(|i| Tensor::full([1, 3, 8, 8], if i % 2 == 0 { 0.8 } else { -0.8 }))
            .collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let cfg = TrainConfig {
            epochs: 25,
            batch_size: 4,
            seed: 2,
            sgd: SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 0.0 },
        };
        let report = fit(&mut m, &images, &labels, &cfg).unwrap();
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(VggConfig { stages: vec![], ..VggConfig::vgg11() }.build().is_err());
        assert!(VggConfig { input_size: 24, ..VggConfig::vgg11() }.build().is_err());
        assert!(VggConfig { stages: vec![(0, 8)], classes: 10, input_size: 8 }.build().is_err());
    }

    #[test]
    fn seeded_builds_reproducible() {
        let a = VggConfig::vgg_micro().build_seeded(9).unwrap();
        let b = VggConfig::vgg_micro().build_seeded(9).unwrap();
        assert_eq!(a.store(), b.store());
    }
}
