//! Training: explicit backpropagation through the operator graph plus SGD.
//!
//! The paper's golden models are *trained* networks (ResNet-20 at 91.7% on
//! CIFAR-10). Reproducing the data-aware analysis on weights that have
//! actually descended a loss — rather than freshly initialised ones —
//! closes the last gap between this substrate and the paper's setting, and
//! gives the synthetic evaluation sets meaningful golden accuracy.
//!
//! The implementation is deliberately explicit: a reverse pass over the
//! topologically ordered node list, dispatching to the vector-Jacobian
//! products in [`sfi_tensor::ops::grad`]. Batch-norm trains in *frozen
//! statistics* mode (learnable affine, fixed μ/σ²), which sidesteps
//! batch-statistics coupling and is all a small synthetic task needs.
//!
//! # Example
//!
//! ```
//! use sfi_nn::resnet::ResNetConfig;
//! use sfi_nn::train::{fit, TrainConfig};
//! use sfi_tensor::Tensor;
//!
//! # fn main() -> Result<(), sfi_nn::NnError> {
//! let mut model = ResNetConfig { base_width: 2, blocks_per_stage: 1, classes: 2, input_size: 8 }
//!     .build_seeded(1)?;
//! // Two trivially separable classes.
//! let images = vec![Tensor::full([1, 3, 8, 8], 1.0), Tensor::full([1, 3, 8, 8], -1.0)];
//! let labels = vec![0usize, 1];
//! let report = fit(&mut model, &images, &labels, &TrainConfig::new(40))?;
//! assert!(report.final_loss() < report.epoch_losses[0]);
//! # Ok(())
//! # }
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use sfi_tensor::ops::grad;
use sfi_tensor::Tensor;

use crate::{Model, NnError, NodeOp, ParamKind};

/// Per-parameter gradients, aligned with the model's parameter ids.
#[derive(Debug, Clone, PartialEq)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    fn zeros(params: usize) -> Self {
        Self { grads: vec![None; params] }
    }

    fn accumulate(&mut self, param: usize, grad: Tensor) {
        match &mut self.grads[param] {
            Some(existing) => {
                for (a, b) in existing.as_mut_slice().iter_mut().zip(grad.iter()) {
                    *a += b;
                }
            }
            slot => *slot = Some(grad),
        }
    }

    /// The gradient of parameter `param`, when one was produced.
    pub fn get(&self, param: usize) -> Option<&Tensor> {
        self.grads.get(param).and_then(Option::as_ref)
    }

    /// Number of parameters with a gradient.
    pub fn count(&self) -> usize {
        self.grads.iter().filter(|g| g.is_some()).count()
    }
}

/// Computes the softmax-cross-entropy loss of one batch and the gradients
/// of every trainable parameter via backpropagation.
///
/// # Errors
///
/// Propagates forward/backward operator failures and label-range errors.
pub fn backward(
    model: &Model,
    input: &Tensor,
    labels: &[usize],
) -> Result<(f32, Gradients), NnError> {
    let cache = model.forward_cached(input)?;
    let logits = cache.get(cache.len() - 1).expect("cache covers all nodes");
    let (loss, grad_logits) = grad::softmax_cross_entropy(logits, labels)
        .map_err(|source| NnError::Op { node: model.nodes().len() - 1, source })?;

    let mut grads = Gradients::zeros(model.store().len());
    let mut node_grads: Vec<Option<Tensor>> = vec![None; model.nodes().len()];
    *node_grads.last_mut().expect("graph is nonempty") = Some(grad_logits);

    for id in (1..model.nodes().len()).rev() {
        let Some(g_out) = node_grads[id].take() else {
            continue;
        };
        let node = &model.nodes()[id];
        let x = |i: usize| cache.get(node.inputs[i]).expect("cache covers inputs");
        let wrap = |source| NnError::Op { node: id, source };
        let param = |p: usize| &model.store().get(p).expect("validated").tensor;
        match &node.op {
            NodeOp::Input => unreachable!("input node has id 0"),
            NodeOp::Conv { weight, bias, cfg } => {
                let (gx, gw) =
                    grad::conv2d_backward(x(0), param(*weight), &g_out, *cfg).map_err(wrap)?;
                grads.accumulate(*weight, gw);
                if let Some(b) = bias {
                    // d/d(bias[co]) = sum of grad over batch and space.
                    let (n, c, h, w) = (
                        g_out.shape().n(),
                        g_out.shape().c(),
                        g_out.shape().h(),
                        g_out.shape().w(),
                    );
                    let mut gb = Tensor::zeros([c]);
                    let gos = g_out.as_slice();
                    for ni in 0..n {
                        for ci in 0..c {
                            let sum: f32 = gos[(ni * c + ci) * h * w..][..h * w].iter().sum();
                            gb.as_mut_slice()[ci] += sum;
                        }
                    }
                    grads.accumulate(*b, gb);
                }
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::BatchNorm { gamma, beta, mean, var, eps } => {
                let (gx, gg, gb) = grad::batch_norm_backward(
                    x(0),
                    param(*gamma),
                    param(*mean),
                    param(*var),
                    *eps,
                    &g_out,
                )
                .map_err(wrap)?;
                grads.accumulate(*gamma, gg);
                grads.accumulate(*beta, gb);
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::Relu => {
                let gx = grad::relu_backward(x(0), &g_out).map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::Relu6 => {
                let gx = grad::relu6_backward(x(0), &g_out).map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::AvgPool { kernel } => {
                let gx = grad::avg_pool2d_backward(x(0).shape(), *kernel, &g_out).map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::MaxPool { kernel } => {
                let gx = grad::max_pool2d_backward(x(0), *kernel, &g_out).map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::GlobalAvgPool => {
                let gx = grad::global_avg_pool_backward(x(0).shape(), &g_out).map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::Linear { weight, bias } => {
                let x0 = x(0);
                let x2 = if x0.shape().rank() == 2 {
                    x0.clone()
                } else {
                    let n = x0.shape().dims()[0];
                    x0.reshape([n, x0.len() / n]).map_err(wrap)?
                };
                let (gx2, gw, gb) =
                    grad::linear_backward(&x2, param(*weight), &g_out).map_err(wrap)?;
                grads.accumulate(*weight, gw);
                if let Some(b) = bias {
                    grads.accumulate(*b, gb);
                }
                let gx = gx2.reshape(x0.shape()).map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
            NodeOp::Add => {
                accumulate_node(&mut node_grads, node.inputs[0], g_out.clone());
                accumulate_node(&mut node_grads, node.inputs[1], g_out);
            }
            NodeOp::DownsamplePad { out_channels, stride } => {
                let gx = grad::downsample_pad_channels_backward(
                    x(0).shape(),
                    *out_channels,
                    *stride,
                    &g_out,
                )
                .map_err(wrap)?;
                accumulate_node(&mut node_grads, node.inputs[0], gx);
            }
        }
    }
    Ok((loss, grads))
}

fn accumulate_node(node_grads: &mut [Option<Tensor>], node: usize, grad: Tensor) {
    match &mut node_grads[node] {
        Some(existing) => {
            for (a, b) in existing.as_mut_slice().iter_mut().zip(grad.iter()) {
                *a += b;
            }
        }
        slot => *slot = Some(grad),
    }
}

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay, applied to `Weight`-kind parameters only.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self { lr: 0.01, momentum: 0.9, weight_decay: 1e-4 }
    }
}

/// SGD-with-momentum optimiser state.
#[derive(Debug, Clone)]
pub struct Sgd {
    cfg: SgdConfig,
    velocity: Vec<Option<Vec<f32>>>,
}

impl Sgd {
    /// Creates an optimiser for a model with `params` parameters.
    pub fn new(cfg: SgdConfig, params: usize) -> Self {
        Self { cfg, velocity: vec![None; params] }
    }

    /// Applies one update step. Batch-norm running statistics are never
    /// touched; weight decay applies only to convolution/linear weights.
    pub fn step(&mut self, model: &mut Model, grads: &Gradients) {
        for (id, param) in model.store_mut().iter_mut().enumerate() {
            if matches!(param.kind, ParamKind::BnMean | ParamKind::BnVar) {
                continue;
            }
            let Some(grad) = grads.get(id) else {
                continue;
            };
            let wd = if matches!(param.kind, ParamKind::Weight { .. }) {
                self.cfg.weight_decay
            } else {
                0.0
            };
            let velocity = self.velocity[id].get_or_insert_with(|| vec![0.0; param.tensor.len()]);
            for ((w, v), g) in
                param.tensor.as_mut_slice().iter_mut().zip(velocity.iter_mut()).zip(grad.iter())
            {
                *v = self.cfg.momentum * *v - self.cfg.lr * (g + wd * *w);
                *w += *v;
            }
        }
    }
}

/// Full training-run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle/optimiser seed.
    pub seed: u64,
    /// Optimiser hyper-parameters.
    pub sgd: SgdConfig,
}

impl TrainConfig {
    /// `epochs` epochs with defaults otherwise.
    pub fn new(epochs: usize) -> Self {
        Self { epochs, batch_size: 8, seed: 0, sgd: SgdConfig::default() }
    }
}

/// Outcome of a [`fit`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// The last epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::INFINITY)
    }
}

/// Trains `model` on `(images, labels)` pairs (each image `[1, C, H, W]`).
///
/// # Errors
///
/// Returns [`NnError::InvalidGraph`] for empty or mismatched data, or the
/// first forward/backward failure.
pub fn fit(
    model: &mut Model,
    images: &[Tensor],
    labels: &[usize],
    cfg: &TrainConfig,
) -> Result<TrainReport, NnError> {
    if images.is_empty() || images.len() != labels.len() {
        return Err(NnError::InvalidGraph {
            reason: format!("{} images vs {} labels", images.len(), labels.len()),
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sgd = Sgd::new(cfg.sgd, model.store().len());
    let mut order: Vec<usize> = (0..images.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let batch = cfg.batch_size.max(1);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            let (input, chunk_labels) = stack(images, labels, chunk)?;
            let (loss, grads) = backward(model, &input, &chunk_labels)?;
            sgd.step(model, &grads);
            loss_sum += f64::from(loss);
            batches += 1;
        }
        epoch_losses.push((loss_sum / batches.max(1) as f64) as f32);
    }
    Ok(TrainReport { epoch_losses })
}

/// Concatenates single-image tensors into one batch.
fn stack(
    images: &[Tensor],
    labels: &[usize],
    indices: &[usize],
) -> Result<(Tensor, Vec<usize>), NnError> {
    let first = &images[indices[0]];
    let dims = first.shape().dims().to_vec();
    let mut data = Vec::with_capacity(first.len() * indices.len());
    let mut out_labels = Vec::with_capacity(indices.len());
    for &i in indices {
        if images[i].shape().dims() != dims {
            return Err(NnError::InvalidGraph {
                reason: "images in a batch must share a shape".into(),
            });
        }
        data.extend_from_slice(images[i].as_slice());
        out_labels.push(labels[i]);
    }
    let mut shape = dims;
    shape[0] = indices.len();
    let batch = Tensor::from_vec(sfi_tensor::Shape::new(&shape), data)
        .expect("stacked buffer matches its shape");
    Ok((batch, out_labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::ResNetConfig;

    fn tiny_model(classes: usize) -> Model {
        ResNetConfig { base_width: 2, blocks_per_stage: 1, classes, input_size: 8 }
            .build_seeded(5)
            .unwrap()
    }

    fn toy_data(n: usize, classes: usize) -> (Vec<Tensor>, Vec<usize>) {
        // Class c = constant image of value scaled by class index, plus a
        // deterministic ripple so convolutions see structure.
        let images: Vec<Tensor> = (0..n)
            .map(|i| {
                let c = i % classes;
                Tensor::from_fn([1, 3, 8, 8], |j| {
                    (c as f32 - (classes as f32 - 1.0) / 2.0) * 0.8
                        + ((i * 31 + j * 7) % 13) as f32 * 0.01
                })
            })
            .collect();
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        (images, labels)
    }

    #[test]
    fn backward_produces_gradients_for_all_trainables() {
        let model = tiny_model(10);
        let (images, labels) = toy_data(4, 10);
        let (input, batch_labels) = stack(&images, &labels, &[0, 1, 2, 3]).unwrap();
        let (loss, grads) = backward(&model, &input, &batch_labels).unwrap();
        assert!(loss > 0.0 && loss.is_finite());
        // Every weight and every BN affine parameter has a gradient.
        let expected = model
            .store()
            .iter()
            .filter(|p| {
                matches!(
                    p.kind,
                    ParamKind::Weight { .. }
                        | ParamKind::Bias
                        | ParamKind::BnGamma
                        | ParamKind::BnBeta
                )
            })
            .count();
        assert_eq!(grads.count(), expected);
    }

    #[test]
    fn gradients_match_numeric_end_to_end() {
        // Spot-check the full backprop chain against finite differences on
        // a handful of parameters spread across the network.
        let model = tiny_model(4);
        let (images, labels) = toy_data(2, 4);
        let (input, batch_labels) = stack(&images, &labels, &[0, 1]).unwrap();
        let (_, grads) = backward(&model, &input, &batch_labels).unwrap();
        let eps = 1e-2f32;
        for (param_id, idx) in [(0usize, 3usize), (0, 20)] {
            let mut plus = model.clone();
            plus.store_mut().get_mut(param_id).unwrap().tensor.as_mut_slice()[idx] += eps;
            let lp = {
                let c = plus.forward(&input).unwrap();
                grad::softmax_cross_entropy(&c, &batch_labels).unwrap().0
            };
            let mut minus = model.clone();
            minus.store_mut().get_mut(param_id).unwrap().tensor.as_mut_slice()[idx] -= eps;
            let lm = {
                let c = minus.forward(&input).unwrap();
                grad::softmax_cross_entropy(&c, &batch_labels).unwrap().0
            };
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.get(param_id).unwrap().as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "param {param_id}[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn fit_reduces_loss_and_learns_the_toy_task() {
        let mut model = tiny_model(4);
        let (images, labels) = toy_data(24, 4);
        let sgd = SgdConfig { lr: 0.004, momentum: 0.9, weight_decay: 1e-4 };
        let cfg = TrainConfig { epochs: 40, batch_size: 8, seed: 1, sgd };
        let report = fit(&mut model, &images, &labels, &cfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 40);
        assert!(
            report.final_loss() < report.epoch_losses[0] * 0.5,
            "loss should at least halve: {:?}",
            (report.epoch_losses[0], report.final_loss())
        );
        // The trained model classifies the toy task well above chance.
        let correct = images
            .iter()
            .zip(&labels)
            .filter(|(img, &label)| model.predict(img).unwrap()[0] == label)
            .count();
        assert!(correct * 2 > images.len(), "accuracy {}/{}", correct, images.len());
    }

    #[test]
    fn training_is_deterministic() {
        let (images, labels) = toy_data(8, 2);
        let cfg = TrainConfig::new(5);
        let mut a = tiny_model(2);
        let mut b = tiny_model(2);
        let ra = fit(&mut a, &images, &labels, &cfg).unwrap();
        let rb = fit(&mut b, &images, &labels, &cfg).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.store(), b.store());
    }

    #[test]
    fn bn_statistics_are_frozen() {
        let mut model = tiny_model(2);
        let stats_before: Vec<Tensor> = model
            .store()
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::BnMean | ParamKind::BnVar))
            .map(|p| p.tensor.clone())
            .collect();
        let (images, labels) = toy_data(8, 2);
        fit(&mut model, &images, &labels, &TrainConfig::new(3)).unwrap();
        let stats_after: Vec<Tensor> = model
            .store()
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::BnMean | ParamKind::BnVar))
            .map(|p| p.tensor.clone())
            .collect();
        assert_eq!(stats_before, stats_after);
    }

    #[test]
    fn fit_rejects_mismatched_data() {
        let mut model = tiny_model(2);
        let (images, _) = toy_data(4, 2);
        assert!(fit(&mut model, &images, &[0, 1], &TrainConfig::new(1)).is_err());
        assert!(fit(&mut model, &[], &[], &TrainConfig::new(1)).is_err());
    }
}
