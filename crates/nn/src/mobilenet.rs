//! CIFAR-10 MobileNetV2 (Sandler et al. 2018) — the paper's second case
//! study.
//!
//! The CIFAR variant follows the widely used adaptation: stride-1 stem,
//! stride-1 first expansion stage (32×32 inputs cannot afford the ImageNet
//! model's aggressive early downsampling), and a 10-class head. Matching the
//! paper's Table II (54 weight layers, 2,203,584 parameters) requires one
//! structural detail: the first inverted-residual block (expansion factor
//! `t = 1`) **keeps** its 1×1 expansion convolution rather than eliding it
//! as torchvision does — 1 stem + 17 blocks × 3 convolutions + 1 final 1×1
//! convolution + 1 classifier = 54.

use serde::{Deserialize, Serialize};

use sfi_tensor::ops::Conv2dCfg;

use crate::builder::GraphBuilder;
use crate::{init, Model, NnError, NodeId};

/// One inverted-residual stage description: `(expansion, channels, repeats,
/// first-stride)`.
type Stage = (usize, usize, usize, usize);

/// The CIFAR MobileNetV2 stage table.
const STAGES: [Stage; 7] = [
    (1, 16, 1, 1),
    (6, 24, 2, 1), // stride 1 (ImageNet uses 2): CIFAR adaptation
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
];

/// Configuration of a CIFAR MobileNetV2.
///
/// # Example
///
/// ```
/// use sfi_nn::mobilenet::MobileNetV2Config;
///
/// let cfg = MobileNetV2Config::cifar();
/// let model = cfg.build().unwrap();
/// assert_eq!(model.weight_layers().len(), 54);
/// assert_eq!(model.store().total_weights(), 2_203_584); // paper Table II
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileNetV2Config {
    /// Width multiplier applied to every channel count (paper network: 1.0).
    pub width: f64,
    /// Number of output classes (CIFAR-10: 10).
    pub classes: usize,
    /// Input spatial size (CIFAR: 32).
    pub input_size: usize,
}

impl MobileNetV2Config {
    /// The paper's CIFAR-10 MobileNetV2 at full width.
    pub fn cifar() -> Self {
        Self { width: 1.0, classes: 10, input_size: 32 }
    }

    /// A reduced variant small enough for exhaustive fault injection:
    /// width 0.1, 16×16 inputs.
    pub fn cifar_micro() -> Self {
        Self { width: 0.1, classes: 10, input_size: 16 }
    }

    /// Returns a copy with a different width multiplier.
    pub fn with_width(mut self, width: f64) -> Self {
        self.width = width;
        self
    }

    /// Returns a copy with a different input resolution.
    pub fn with_input_size(mut self, input_size: usize) -> Self {
        self.input_size = input_size;
        self
    }

    fn scaled(&self, channels: usize) -> usize {
        ((channels as f64 * self.width).round() as usize).max(2)
    }

    /// Builds the model with zeroed parameters.
    ///
    /// # Errors
    ///
    /// Returns an error for non-positive width, zero classes, or an input
    /// size not divisible by 8 (the network downsamples three times).
    pub fn build(&self) -> Result<Model, NnError> {
        if self.width <= 0.0 || !self.width.is_finite() || self.classes == 0 {
            return Err(NnError::InvalidGraph {
                reason: "width must be positive and classes nonzero".into(),
            });
        }
        if self.input_size == 0 || !self.input_size.is_multiple_of(8) {
            return Err(NnError::InvalidGraph {
                reason: format!("input size {} must be a positive multiple of 8", self.input_size),
            });
        }
        let mut b = GraphBuilder::new();

        // Stem: 3 -> 32, stride 1 on CIFAR.
        let stem = self.scaled(32);
        let mut x = b.conv("conv0", 0, 3, stem, 3, Conv2dCfg::same(1));
        x = b.batch_norm("bn0", x, stem);
        x = b.relu6(x);

        let mut c_in = stem;
        for (si, &(t, c, n, s)) in STAGES.iter().enumerate() {
            let c_out = self.scaled(c);
            for block in 0..n {
                let stride = if block == 0 { s } else { 1 };
                let name = format!("stage{si}.block{block}");
                x = inverted_residual(&mut b, &name, x, c_in, c_out, t, stride);
                c_in = c_out;
            }
        }

        // Head: 1x1 conv to 1280, GAP, classifier.
        let head = self.scaled(1280);
        x = b.conv("conv_last", x, c_in, head, 1, Conv2dCfg::valid(1));
        x = b.batch_norm("bn_last", x, head);
        x = b.relu6(x);
        x = b.global_avg_pool(x);
        let _ = b.linear("fc", x, head, self.classes);
        b.finish("mobilenetv2", vec![3, self.input_size, self.input_size])
    }

    /// Builds the model and initialises every parameter from `seed`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MobileNetV2Config::build`].
    pub fn build_seeded(&self, seed: u64) -> Result<Model, NnError> {
        let mut model = self.build()?;
        init::initialize_seeded(model.store_mut(), seed);
        Ok(model)
    }
}

impl Default for MobileNetV2Config {
    fn default() -> Self {
        Self::cifar()
    }
}

/// An inverted residual block: 1×1 expand → 3×3 depthwise → 1×1 project,
/// each BN-normalised, ReLU6 after the first two, residual add when the
/// block preserves shape. The expansion convolution is present even at
/// `t = 1` (see module docs).
fn inverted_residual(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    c_in: usize,
    c_out: usize,
    t: usize,
    stride: usize,
) -> NodeId {
    let hidden = c_in * t;
    let mut x = b.conv(&format!("{name}.expand"), input, c_in, hidden, 1, Conv2dCfg::valid(1));
    x = b.batch_norm(&format!("{name}.bn1"), x, hidden);
    x = b.relu6(x);
    x = b.conv(
        &format!("{name}.depthwise"),
        x,
        hidden,
        hidden,
        3,
        Conv2dCfg::same(stride).with_groups(hidden),
    );
    x = b.batch_norm(&format!("{name}.bn2"), x, hidden);
    x = b.relu6(x);
    x = b.conv(&format!("{name}.project"), x, hidden, c_out, 1, Conv2dCfg::valid(1));
    x = b.batch_norm(&format!("{name}.bn3"), x, c_out);
    if stride == 1 && c_in == c_out {
        x = b.add(x, input);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_tensor::Tensor;

    #[test]
    fn cifar_matches_paper_table2_totals() {
        let m = MobileNetV2Config::cifar().build().unwrap();
        assert_eq!(m.weight_layers().len(), 54, "paper Table II: 54 layers");
        assert_eq!(m.store().total_weights(), 2_203_584, "paper Table II parameters");
        // Fault population: params × 32 bits × 2 stuck-at polarities.
        assert_eq!(m.store().total_weights() * 64, 141_029_376);
    }

    #[test]
    fn layer_zero_and_last_layers() {
        let m = MobileNetV2Config::cifar().build().unwrap();
        let layers = m.weight_layers();
        assert_eq!(layers[0].len, 3 * 32 * 9, "stem");
        assert_eq!(layers[52].len, 320 * 1280, "final 1x1 conv");
        assert_eq!(layers[53].len, 1280 * 10, "classifier");
    }

    #[test]
    fn micro_variant_forward() {
        let m = MobileNetV2Config::cifar_micro().build_seeded(3).unwrap();
        let out = m.forward(&Tensor::zeros([1, 3, 16, 16])).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
        assert!(out.iter().all(f32::is_finite));
        assert_eq!(m.weight_layers().len(), 54);
    }

    #[test]
    fn full_width_forward_runs() {
        // One full-size inference to pin the spatial bookkeeping.
        let m = MobileNetV2Config::cifar().with_width(0.25).build_seeded(9).unwrap();
        let out = m.forward(&Tensor::full([1, 3, 32, 32], 0.1)).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(MobileNetV2Config::cifar().with_width(0.0).build().is_err());
        assert!(MobileNetV2Config::cifar().with_input_size(20).build().is_err());
        assert!(MobileNetV2Config { classes: 0, ..MobileNetV2Config::cifar() }.build().is_err());
    }

    #[test]
    fn residual_blocks_present() {
        // Stage 1 block 1 (24 -> 24, stride 1) must contain an Add node.
        let m = MobileNetV2Config::cifar().build().unwrap();
        let adds = m.nodes().iter().filter(|n| matches!(n.op, crate::NodeOp::Add)).count();
        // Residual blocks: repeats beyond the first in each stage:
        // (1-1)+(2-1)+(3-1)+(4-1)+(3-1)+(3-1)+(1-1) = 10.
        assert_eq!(adds, 10);
    }

    #[test]
    fn seeded_builds_are_reproducible() {
        let a = MobileNetV2Config::cifar_micro().build_seeded(21).unwrap();
        let b = MobileNetV2Config::cifar_micro().build_seeded(21).unwrap();
        assert_eq!(a.store(), b.store());
    }
}
