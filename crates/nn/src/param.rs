use serde::{Deserialize, Serialize};

use sfi_tensor::Tensor;

use crate::NnError;

/// Identifier of a parameter inside a [`ParameterStore`].
pub type ParamId = usize;

/// What role a parameter plays in the model.
///
/// Only [`ParamKind::Weight`] parameters belong to the fault population: the
/// paper injects permanent faults exclusively into convolution and
/// fully-connected *weights* (its Tables I/II count those and nothing else).
/// Biases and batch-norm statistics are auxiliary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// A fault-injectable weight tensor, tagged with its 0-based weight
    /// layer index (the paper's "Layer" column).
    Weight {
        /// Position in the network's weight-layer ordering.
        layer: usize,
    },
    /// A convolution or linear bias.
    Bias,
    /// Batch-norm scale `γ`.
    BnGamma,
    /// Batch-norm shift `β`.
    BnBeta,
    /// Batch-norm running mean `μ`.
    BnMean,
    /// Batch-norm running variance `σ²`.
    BnVar,
}

/// A named tensor owned by a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    /// Human-readable dotted name, e.g. `stage2.block0.conv1.weight`.
    pub name: String,
    /// Role of the parameter.
    pub kind: ParamKind,
    /// The values.
    pub tensor: Tensor,
}

/// Description of one fault-injectable weight layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WeightLayer {
    /// The paper's 0-based layer index.
    pub layer: usize,
    /// Parameter id of the weight tensor.
    pub param: ParamId,
    /// Number of weights in the layer.
    pub len: usize,
    /// Name of the weight parameter.
    pub name: String,
}

/// Flat storage of every parameter of a model.
///
/// Parameters are appended during graph construction; their ids are stable
/// indices. Cloning a store is how campaign workers obtain an independent,
/// mutable copy to inject faults into.
///
/// # Example
///
/// ```
/// use sfi_nn::{ParamKind, ParameterStore};
/// use sfi_tensor::Tensor;
///
/// let mut store = ParameterStore::new();
/// let id = store.push("conv0.weight", ParamKind::Weight { layer: 0 }, Tensor::zeros([4, 3, 3, 3]));
/// assert_eq!(store.get(id).unwrap().name, "conv0.weight");
/// assert_eq!(store.weight_layers().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParameterStore {
    params: Vec<Parameter>,
}

impl ParameterStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a parameter, returning its id.
    pub fn push(&mut self, name: impl Into<String>, kind: ParamKind, tensor: Tensor) -> ParamId {
        self.params.push(Parameter { name: name.into(), kind, tensor });
        self.params.len() - 1
    }

    /// The parameter with id `id`, or `None` when out of range.
    pub fn get(&self, id: ParamId) -> Option<&Parameter> {
        self.params.get(id)
    }

    /// Mutable access to the parameter with id `id`.
    pub fn get_mut(&mut self, id: ParamId) -> Option<&mut Parameter> {
        self.params.get_mut(id)
    }

    /// Number of parameters (of all kinds).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates over all parameters in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Parameter> {
        self.params.iter()
    }

    /// Iterates mutably over all parameters in id order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Parameter> {
        self.params.iter_mut()
    }

    /// The fault-injectable weight layers, ordered by layer index.
    ///
    /// # Panics
    ///
    /// Panics if two weight parameters claim the same layer index (a
    /// construction bug).
    pub fn weight_layers(&self) -> Vec<WeightLayer> {
        let mut layers: Vec<WeightLayer> = self
            .params
            .iter()
            .enumerate()
            .filter_map(|(id, p)| match p.kind {
                ParamKind::Weight { layer } => Some(WeightLayer {
                    layer,
                    param: id,
                    len: p.tensor.len(),
                    name: p.name.clone(),
                }),
                _ => None,
            })
            .collect();
        layers.sort_by_key(|l| l.layer);
        for pair in layers.windows(2) {
            assert_ne!(pair[0].layer, pair[1].layer, "duplicate weight layer index");
        }
        layers
    }

    /// Total number of fault-injectable weights across all layers.
    pub fn total_weights(&self) -> usize {
        self.params
            .iter()
            .filter(|p| matches!(p.kind, ParamKind::Weight { .. }))
            .map(|p| p.tensor.len())
            .sum()
    }

    /// The weight slice of layer `layer`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] when no weight parameter has
    /// that layer index.
    pub fn layer_weights(&self, layer: usize) -> Result<&[f32], NnError> {
        self.params
            .iter()
            .find(|p| p.kind == ParamKind::Weight { layer })
            .map(|p| p.tensor.as_slice())
            .ok_or_else(|| NnError::InvalidParameter { reason: format!("no weight layer {layer}") })
    }

    /// Iterates over every fault-injectable weight value, layer by layer.
    pub fn all_weights(&self) -> impl Iterator<Item = f32> + '_ {
        let layers = self.weight_layers();
        layers.into_iter().flat_map(move |l| self.params[l.param].tensor.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_layers() -> ParameterStore {
        let mut s = ParameterStore::new();
        s.push("conv0.weight", ParamKind::Weight { layer: 0 }, Tensor::zeros([2, 3, 3, 3]));
        s.push("conv0.bn.gamma", ParamKind::BnGamma, Tensor::zeros([2]));
        s.push("fc.weight", ParamKind::Weight { layer: 1 }, Tensor::zeros([10, 2]));
        s.push("fc.bias", ParamKind::Bias, Tensor::zeros([10]));
        s
    }

    #[test]
    fn push_and_get_round_trip() {
        let s = store_with_layers();
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(0).unwrap().name, "conv0.weight");
        assert!(s.get(99).is_none());
    }

    #[test]
    fn weight_layers_only_include_weights() {
        let s = store_with_layers();
        let layers = s.weight_layers();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].layer, 0);
        assert_eq!(layers[0].len, 54);
        assert_eq!(layers[1].layer, 1);
        assert_eq!(layers[1].len, 20);
    }

    #[test]
    fn total_weights_sums_layers() {
        assert_eq!(store_with_layers().total_weights(), 74);
    }

    #[test]
    fn layer_weights_lookup() {
        let s = store_with_layers();
        assert_eq!(s.layer_weights(1).unwrap().len(), 20);
        assert!(s.layer_weights(7).is_err());
    }

    #[test]
    fn all_weights_iterates_in_layer_order() {
        let mut s = ParameterStore::new();
        s.push("b", ParamKind::Weight { layer: 1 }, Tensor::full([2], 2.0));
        s.push("a", ParamKind::Weight { layer: 0 }, Tensor::full([2], 1.0));
        let w: Vec<f32> = s.all_weights().collect();
        assert_eq!(w, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate weight layer")]
    fn duplicate_layer_indices_panic() {
        let mut s = ParameterStore::new();
        s.push("a", ParamKind::Weight { layer: 0 }, Tensor::zeros([2]));
        s.push("b", ParamKind::Weight { layer: 0 }, Tensor::zeros([2]));
        s.weight_layers();
    }
}
