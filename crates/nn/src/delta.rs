//! Sparse delta-propagation faulty inference.
//!
//! A stuck-at weight fault perturbs exactly one output unit of one node;
//! everything else that first node produces is bit-golden. Instead of
//! re-running the dense suffix ([`Model::forward_from`]) or probing for
//! whole-node convergence ([`Model::forward_from_converging`]), the delta
//! pass represents every faulty activation as *golden + delta*: the full
//! tensor is materialized, but a [`DirtyMask`] records which per-channel,
//! per-spatial-block regions may differ bitwise from the golden run. Each
//! node then:
//!
//! 1. computes a conservative **candidate** mask from its inputs' masks and
//!    the operator's receptive-field geometry (a conv dilates spatial
//!    blocks by its kernel extent and spreads to every output channel of
//!    the same group; pooling contracts; `Add` unions; element-wise ops
//!    copy);
//! 2. recomputes only the candidate elements with *order-exact* scalar
//!    kernels that replicate the dense kernels' per-element accumulation
//!    sequence (so the bits match exactly, non-finite values included);
//!    clean elements are copied from golden, which is exact because their
//!    dense recomputation would read only bit-golden inputs;
//! 3. **trims** the mask by bit-comparing the recomputed candidate blocks
//!    against golden — this is what makes deltas die (ReLU clamping both
//!    values to zero, zero input windows, non-sampled strided pixels);
//! 4. falls back to the dense kernel when the candidate region saturates
//!    past [`DeltaOptions::saturation`] (a deterministic, pure function of
//!    the mask, so outcomes are identical at any worker count).
//!
//! An empty mask ⇔ the activation is provably bit-golden, so the pass
//! inherits the golden-convergence early exit for free: masked faults cost
//! one seed probe and zero per-node work downstream.

use sfi_tensor::ops::{self, Conv2dCfg, LoweredConv, Padding};
use sfi_tensor::{DirtyMask, ScratchArena, Tensor, DIRTY_BLOCK};

use crate::model::{ActivationCache, ForwardOutcome};
use crate::{Model, NnError, NodeId, NodeOp, ParamId};

/// Default [`DeltaOptions::saturation`] threshold: when a node's candidate
/// dirty region covers at least this fraction of its blocks, the scalar
/// sparse kernels lose to the blocked dense path and the node is evaluated
/// densely. 0.125 was tuned on the full-scale bit-level ResNet-20 campaign
/// (`benches/delta.rs --smoke --scale full`): lower thresholds give up the
/// sparse wins on low-bit faults, higher ones drag scalar kernels through
/// near-dense cones.
pub const DELTA_SATURATION_DEFAULT: f64 = 0.125;

/// Per-caller state threaded through [`Model::forward_delta`].
pub struct DeltaOptions<'a> {
    /// Scratch arena for materialized activations; recycled when the pass
    /// converges.
    pub arena: Option<&'a mut ScratchArena>,
    /// Pre-lowered im2col panels for the *first dirty* conv node (lowered
    /// from its golden input, which is exactly what incremental
    /// re-execution feeds it).
    pub lowered: Option<(NodeId, &'a LoweredConv)>,
    /// Output unit of the first dirty node the fault can reach (see
    /// [`Model::param_output_unit`]); seeds the delta from a single-unit
    /// kernel instead of a dense node evaluation.
    pub dirty_unit: Option<usize>,
    /// Dense-fallback threshold on the candidate mask's dirty fraction, in
    /// `[0, 1]`. A node whose candidate fraction is `>=` this value is
    /// evaluated densely. `0.0` forces every node dense; `1.0` (or more)
    /// keeps every node sparse.
    pub saturation: f64,
}

impl Default for DeltaOptions<'_> {
    fn default() -> Self {
        Self { arena: None, lowered: None, dirty_unit: None, saturation: DELTA_SATURATION_DEFAULT }
    }
}

/// Work counters of one [`Model::forward_delta`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Nodes recomputed through the sparse (dirty-cone) kernels.
    pub sparse_nodes: u64,
    /// Nodes that saturated past the threshold and fell back to the dense
    /// kernel.
    pub dense_nodes: u64,
    /// Nodes proven clean without per-element work (empty candidate or all
    /// inputs clean), plus nodes whose recomputed delta trimmed to empty.
    pub clean_nodes: u64,
    /// Total dirty blocks across all surviving per-node masks — the volume
    /// of the fault's dirty cone.
    pub dirty_blocks: u64,
}

/// One node's materialized faulty activation plus its dirty-region mask.
struct DeltaState {
    value: Tensor,
    mask: DirtyMask,
    /// The mask crossed the saturation threshold when this state was
    /// created. Downstream readers then skip candidate geometry and mask
    /// rebuilds entirely — the cone is already dense, so they evaluate
    /// densely and decide dirtiness with the same short-circuit bitwise
    /// compare the convergence pass uses, paying no delta overhead.
    saturated: bool,
}

impl Model {
    /// Incremental faulty inference by sparse delta propagation.
    ///
    /// Bit-identical to [`Model::forward_from`] / the dense
    /// [`Model::forward_from_converging`] pass in every observable way:
    /// returned logits carry the exact bits dense recomputation would
    /// produce, and [`ForwardOutcome::Converged`] is returned only when the
    /// skipped suffix is provably bit-golden (same live-dirty bookkeeping
    /// as the converging pass, with "dirty" ⇔ "mask nonempty").
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::forward_from`].
    pub fn forward_delta(
        &self,
        first_dirty: NodeId,
        cache: &ActivationCache,
        opts: &mut DeltaOptions<'_>,
    ) -> Result<(ForwardOutcome, DeltaStats), NnError> {
        if cache.len() != self.nodes().len() {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "cache holds {} activations, model has {} nodes",
                    cache.len(),
                    self.nodes().len()
                ),
            });
        }
        let mut stats = DeltaStats::default();
        let first_dirty = first_dirty.max(1);
        let n_nodes = self.nodes().len();
        if first_dirty >= n_nodes {
            let logits = cache.get(n_nodes - 1).expect("nonempty").clone();
            return Ok((ForwardOutcome::Logits(logits), stats));
        }
        match self.delta_seed(first_dirty, cache, opts, &mut stats)? {
            None => {
                stats.clean_nodes += 1;
                Ok((ForwardOutcome::Converged { at_node: first_dirty }, stats))
            }
            Some(state) => self.delta_run(first_dirty, cache, state, opts, stats),
        }
    }

    /// Incremental faulty inference from a single corrupted activation
    /// element — the transient-fault injection hook.
    ///
    /// The seed is not recomputed at all: the golden activation of `node` is
    /// cloned, its flat `element` is replaced by `faulty_bits`, and the
    /// delta cone starts from [`DirtyMask::single_site`]. `node` may be `0`,
    /// which corrupts the *input* tensor and propagates through the whole
    /// network. When the corrupted bits equal the golden bits the fault is
    /// provably masked and [`ForwardOutcome::Converged`] at `node` is
    /// returned without any downstream work.
    ///
    /// With `saturation == 0.0` every downstream node takes the dense
    /// bit-compare fast path, which makes this hook behave exactly like the
    /// dense golden-convergence pass — same classifications, same bits.
    ///
    /// # Errors
    ///
    /// [`NnError::CacheMismatch`] when the cache does not cover the model or
    /// the site names a node/element out of range.
    pub fn forward_delta_site(
        &self,
        node: NodeId,
        element: usize,
        faulty_bits: u32,
        cache: &ActivationCache,
        opts: &mut DeltaOptions<'_>,
    ) -> Result<(ForwardOutcome, DeltaStats), NnError> {
        let n_nodes = self.nodes().len();
        if cache.len() != n_nodes {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "cache holds {} activations, model has {n_nodes} nodes",
                    cache.len()
                ),
            });
        }
        if node >= n_nodes {
            return Err(NnError::CacheMismatch {
                reason: format!("activation site names node {node}, model has {n_nodes} nodes"),
            });
        }
        let golden = cache.get(node).expect("cache covers model");
        let g = golden.as_slice();
        if element >= g.len() {
            return Err(NnError::CacheMismatch {
                reason: format!(
                    "activation site element {element} out of range for node {node} ({} elements)",
                    g.len()
                ),
            });
        }
        let mut stats = DeltaStats::default();
        if g[element].to_bits() == faulty_bits {
            stats.clean_nodes += 1;
            return Ok((ForwardOutcome::Converged { at_node: node }, stats));
        }
        let wrap = |source| NnError::Op { node, source };
        let mut data = golden_copy(golden, opts.arena.as_deref_mut());
        data[element] = f32::from_bits(faulty_bits);
        let mask = DirtyMask::single_site(golden.shape(), element).map_err(wrap)?;
        let saturated = mask.dirty_fraction() >= opts.saturation;
        let value = Tensor::from_vec(golden.shape(), data).expect("golden-shaped buffer");
        stats.sparse_nodes += 1;
        self.delta_run(node, cache, DeltaState { value, mask, saturated }, opts, stats)
    }

    /// Propagates an already-seeded delta state through the suffix after
    /// `first_dirty`. Shared by the weight-fault ([`Model::forward_delta`])
    /// and activation-site ([`Model::forward_delta_site`]) entry points;
    /// `first_dirty` may be `0` here (input faults), in which case node 0's
    /// state is the patched input itself.
    fn delta_run(
        &self,
        first_dirty: NodeId,
        cache: &ActivationCache,
        seed: DeltaState,
        opts: &mut DeltaOptions<'_>,
        mut stats: DeltaStats,
    ) -> Result<(ForwardOutcome, DeltaStats), NnError> {
        let n_nodes = self.nodes().len();
        // Same live-dirty bookkeeping as forward_from_converging: a node
        // with a nonempty mask blocks convergence until its last reader
        // has consumed it.
        let mut last_reader: Vec<NodeId> = (0..n_nodes).collect();
        for (id, node) in self.nodes().iter().enumerate().skip(first_dirty) {
            for &inp in &node.inputs {
                last_reader[inp] = id;
            }
        }
        let mut expiring: Vec<u32> = vec![0; n_nodes];
        let mut live_dirty: u32 = 0;
        let mut states: Vec<Option<DeltaState>> = Vec::with_capacity(n_nodes - first_dirty);
        stats.dirty_blocks += seed.mask.dirty_blocks() as u64;
        if last_reader[first_dirty] > first_dirty {
            expiring[last_reader[first_dirty]] += 1;
            live_dirty += 1;
        }
        states.push(Some(seed));
        for id in first_dirty + 1..n_nodes {
            let state = self.delta_node(id, first_dirty, cache, &states, opts, &mut stats)?;
            live_dirty -= expiring[id];
            match state {
                None => {
                    if live_dirty == 0 {
                        if let Some(a) = opts.arena.as_deref_mut() {
                            for s in states.into_iter().flatten() {
                                a.recycle(s.value.into_vec());
                            }
                        }
                        return Ok((ForwardOutcome::Converged { at_node: id }, stats));
                    }
                    states.push(None);
                }
                Some(s) => {
                    stats.dirty_blocks += s.mask.dirty_blocks() as u64;
                    if last_reader[id] > id {
                        expiring[last_reader[id]] += 1;
                        live_dirty += 1;
                    }
                    states.push(Some(s));
                }
            }
        }
        let last = states.pop().expect("suffix is nonempty");
        let out = match last {
            Some(s) => s.value,
            None => cache.get(n_nodes - 1).expect("nonempty").clone(),
        };
        if let Some(a) = opts.arena.as_deref_mut() {
            for s in states.into_iter().flatten() {
                a.recycle(s.value.into_vec());
            }
        }
        Ok((ForwardOutcome::Logits(out), stats))
    }

    /// Seeds the delta at the first dirty node (faulty weights, golden
    /// inputs). Returns `None` when the node's activation is provably
    /// bit-golden — the fault is masked at its own node.
    fn delta_seed(
        &self,
        id: NodeId,
        cache: &ActivationCache,
        opts: &mut DeltaOptions<'_>,
        stats: &mut DeltaStats,
    ) -> Result<Option<DeltaState>, NnError> {
        let node = &self.nodes()[id];
        let param = |p: ParamId| &self.store().get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let golden = cache.get(id).expect("cache covers model");
        // Single-unit seed: a weight fault reaches one output unit; every
        // other unit recomputes from golden inputs and golden weight rows,
        // hence stays bit-golden without being computed.
        let unit_vals: Option<Vec<f32>> = match (&node.op, opts.dirty_unit) {
            (NodeOp::Conv { weight, bias, .. }, Some(unit)) => match opts.lowered {
                Some((ln, low)) if ln == id && unit < param(*weight).shape().n() => Some(
                    ops::conv2d_channel_from_lowered(
                        low,
                        param(*weight),
                        bias.map(&param),
                        unit,
                        opts.arena.as_deref_mut(),
                    )
                    .map_err(wrap)?,
                ),
                _ => None,
            },
            (NodeOp::Linear { weight, bias }, Some(unit))
                if unit < param(*weight).shape().dims()[0] =>
            {
                let xv = cache.get(node.inputs[0]).expect("cache covers model");
                let reshaped;
                let x2 = if xv.shape().rank() == 2 {
                    xv
                } else {
                    let n = xv.shape().dims()[0];
                    let rest = xv.len() / n;
                    reshaped = xv.reshape([n, rest]).map_err(wrap)?;
                    &reshaped
                };
                Some(ops::linear_row(x2, param(*weight), bias.map(&param), unit).map_err(wrap)?)
            }
            _ => None,
        };
        if let Some(vals) = unit_vals {
            let unit = opts.dirty_unit.expect("unit seed requires dirty_unit");
            let shape = golden.shape();
            let dims = shape.dims();
            let (batch, units) = (dims[0], dims[1]);
            let chunk: usize = dims[2..].iter().product();
            let g = golden.as_slice();
            let clean = (0..batch).all(|n| {
                let gs = &g[(n * units + unit) * chunk..][..chunk];
                let vs = &vals[n * chunk..][..chunk];
                gs.iter().zip(vs).all(|(a, b)| a.to_bits() == b.to_bits())
            });
            if clean {
                if let Some(a) = opts.arena.as_deref_mut() {
                    a.recycle(vals);
                }
                return Ok(None);
            }
            stats.sparse_nodes += 1;
            let mut data = golden_copy(golden, opts.arena.as_deref_mut());
            let mut mask = DirtyMask::for_shape(shape).map_err(wrap)?;
            for n in 0..batch {
                let dst = &mut data[(n * units + unit) * chunk..][..chunk];
                dst.copy_from_slice(&vals[n * chunk..][..chunk]);
                mask.mark_plane_bitdiff(
                    n * units + unit,
                    &g[(n * units + unit) * chunk..][..chunk],
                    dst,
                );
            }
            if let Some(a) = opts.arena.as_deref_mut() {
                a.recycle(vals);
            }
            let value = Tensor::from_vec(shape, data).expect("golden-shaped buffer");
            let saturated = mask.dirty_fraction() >= opts.saturation;
            return Ok(Some(DeltaState { value, mask, saturated }));
        }
        // Dense seed: inputs are golden, so the cached lowering (when it
        // names this node) is sound here.
        stats.dense_nodes += 1;
        let lowered = match opts.lowered {
            Some((ln, low)) if ln == id => Some(low),
            _ => None,
        };
        let x0 = cache.get(node.inputs.first().copied().unwrap_or(0)).expect("cache covers model");
        let x1 = node.inputs.get(1).map(|&i| cache.get(i).expect("cache covers model"));
        let value = self.eval_node_dense(id, x0, x1, lowered, opts.arena.as_deref_mut())?;
        let mask = DirtyMask::from_bitdiff(golden.shape(), golden.as_slice(), value.as_slice())
            .map_err(wrap)?;
        if mask.is_empty() {
            if let Some(a) = opts.arena.as_deref_mut() {
                a.recycle(value.into_vec());
            }
            return Ok(None);
        }
        let saturated = mask.dirty_fraction() >= opts.saturation;
        Ok(Some(DeltaState { value, mask, saturated }))
    }

    /// Evaluates one downstream node of the delta pass: clean inputs ⇒ no
    /// work; otherwise candidate geometry, then sparse recompute + trim or
    /// dense fallback past the saturation threshold.
    fn delta_node(
        &self,
        id: NodeId,
        first_dirty: NodeId,
        cache: &ActivationCache,
        states: &[Option<DeltaState>],
        opts: &mut DeltaOptions<'_>,
        stats: &mut DeltaStats,
    ) -> Result<Option<DeltaState>, NnError> {
        let node = &self.nodes()[id];
        let resolve = |inp: NodeId| -> (&Tensor, Option<&DirtyMask>, bool) {
            if inp >= first_dirty {
                if let Some(s) = &states[inp - first_dirty] {
                    return (&s.value, Some(&s.mask), s.saturated);
                }
            }
            (cache.get(inp).expect("cache covers model"), None, false)
        };
        let x0full = resolve(node.inputs[0]);
        let x1full = node.inputs.get(1).map(|&i| resolve(i));
        let x0 = (x0full.0, x0full.1);
        let x1 = x1full.map(|x| (x.0, x.1));
        if x0.1.is_none() && x1.is_none_or(|x| x.1.is_none()) {
            // Zero-delta fast path: every readable input is bit-golden, so
            // this node's dense recomputation would be too. No per-element
            // work happens here.
            stats.clean_nodes += 1;
            return Ok(None);
        }
        let golden = cache.get(id).expect("cache covers model");
        let wrap = |source| NnError::Op { node: id, source };
        if x0full.2 || x1full.is_some_and(|x| x.2) {
            // Saturated-cone fast path: candidate geometry over a saturated
            // input could only rediscover a (near-)full mask, so skip it and
            // decide dirtiness with the convergence pass's short-circuit
            // bitwise compare. This caps the per-node delta overhead at
            // exactly the dense early-exit cost once the cone has gone dense.
            stats.dense_nodes += 1;
            let value =
                self.eval_node_dense(id, x0.0, x1.map(|x| x.0), None, opts.arena.as_deref_mut())?;
            if value.bits_equal(golden) {
                if let Some(a) = opts.arena.as_deref_mut() {
                    a.recycle(value.into_vec());
                }
                stats.clean_nodes += 1;
                return Ok(None);
            }
            let mask = DirtyMask::full(golden.shape()).map_err(wrap)?;
            return Ok(Some(DeltaState { value, mask, saturated: true }));
        }
        let cand = self.candidate_mask(id, golden, x0, x1).map_err(wrap)?;
        if cand.is_empty() {
            stats.clean_nodes += 1;
            return Ok(None);
        }
        let (value, mask) = if cand.dirty_fraction() >= opts.saturation {
            stats.dense_nodes += 1;
            let value =
                self.eval_node_dense(id, x0.0, x1.map(|x| x.0), None, opts.arena.as_deref_mut())?;
            if value.bits_equal(golden) {
                if let Some(a) = opts.arena.as_deref_mut() {
                    a.recycle(value.into_vec());
                }
                stats.clean_nodes += 1;
                return Ok(None);
            }
            let mask = DirtyMask::full(golden.shape()).map_err(wrap)?;
            (value, mask)
        } else {
            stats.sparse_nodes += 1;
            let mut data = golden_copy(golden, opts.arena.as_deref_mut());
            self.sparse_recompute(id, x0.0, x1.map(|x| x.0), &cand, &mut data).map_err(wrap)?;
            let mask = trimmed_mask(golden, &data, &cand).map_err(wrap)?;
            (Tensor::from_vec(golden.shape(), data).expect("golden-shaped buffer"), mask)
        };
        if mask.is_empty() {
            if let Some(a) = opts.arena.as_deref_mut() {
                a.recycle(value.into_vec());
            }
            stats.clean_nodes += 1;
            return Ok(None);
        }
        let saturated = mask.dirty_fraction() >= opts.saturation;
        Ok(Some(DeltaState { value, mask, saturated }))
    }

    /// Dense evaluation of node `id` on explicitly resolved inputs, using
    /// the same fast kernels as `Model::eval_node_with`.
    fn eval_node_dense(
        &self,
        id: NodeId,
        x0: &Tensor,
        x1: Option<&Tensor>,
        lowered: Option<&LoweredConv>,
        arena: Option<&mut ScratchArena>,
    ) -> Result<Tensor, NnError> {
        let node = &self.nodes()[id];
        let param = |p: ParamId| &self.store().get(p).expect("validated at construction").tensor;
        let wrap = |source| NnError::Op { node: id, source };
        let out = match &node.op {
            NodeOp::Input => unreachable!("input node is never re-evaluated"),
            NodeOp::Conv { weight, bias, cfg } => {
                let w = param(*weight);
                let b = bias.map(&param);
                match lowered {
                    Some(low) => ops::conv2d_from_lowered(low, w, b, arena).map_err(wrap)?,
                    None => match arena {
                        Some(a) => ops::conv2d_with(x0, w, b, *cfg, a).map_err(wrap)?,
                        None => ops::conv2d(x0, w, b, *cfg).map_err(wrap)?,
                    },
                }
            }
            NodeOp::BatchNorm { gamma, beta, mean, var, eps } => {
                let params = ops::BatchNormParams {
                    gamma: param(*gamma),
                    beta: param(*beta),
                    mean: param(*mean),
                    var: param(*var),
                    eps: *eps,
                };
                match arena {
                    Some(a) => ops::batch_norm_with(x0, &params, a).map_err(wrap)?,
                    None => ops::batch_norm(x0, &params).map_err(wrap)?,
                }
            }
            NodeOp::Relu => match arena {
                Some(a) => ops::relu_with(x0, a),
                None => ops::relu(x0),
            },
            NodeOp::Relu6 => match arena {
                Some(a) => ops::relu6_with(x0, a),
                None => ops::relu6(x0),
            },
            NodeOp::AvgPool { kernel } => ops::avg_pool2d(x0, *kernel).map_err(wrap)?,
            NodeOp::MaxPool { kernel } => ops::max_pool2d(x0, *kernel).map_err(wrap)?,
            NodeOp::GlobalAvgPool => ops::global_avg_pool(x0).map_err(wrap)?,
            NodeOp::Linear { weight, bias } => {
                let reshaped;
                let x2 = if x0.shape().rank() == 2 {
                    x0
                } else {
                    let n = x0.shape().dims()[0];
                    let rest = x0.len() / n;
                    reshaped = x0.reshape([n, rest]).map_err(wrap)?;
                    &reshaped
                };
                ops::linear(x2, param(*weight), bias.map(&param)).map_err(wrap)?
            }
            NodeOp::Add => {
                let rhs = x1.expect("Add is binary");
                match arena {
                    Some(a) => ops::add_with(x0, rhs, a).map_err(wrap)?,
                    None => ops::add(x0, rhs).map_err(wrap)?,
                }
            }
            NodeOp::DownsamplePad { out_channels, stride } => {
                ops::downsample_pad_channels(x0, *out_channels, *stride).map_err(wrap)?
            }
        };
        Ok(out)
    }

    /// Conservative candidate mask of node `id` from its inputs' masks:
    /// every output block that could read a dirty input element is marked.
    fn candidate_mask(
        &self,
        id: NodeId,
        golden: &Tensor,
        x0: (&Tensor, Option<&DirtyMask>),
        x1: Option<(&Tensor, Option<&DirtyMask>)>,
    ) -> Result<DirtyMask, sfi_tensor::TensorError> {
        let node = &self.nodes()[id];
        let param = |p: ParamId| &self.store().get(p).expect("validated at construction").tensor;
        match &node.op {
            NodeOp::Input => unreachable!("input node is never re-evaluated"),
            NodeOp::Conv { weight, cfg, .. } => {
                let xm = x0.1.expect("conv input is dirty");
                let w = param(*weight);
                conv_candidate(golden, x0.0, w.shape().h(), w.shape().w(), *cfg, xm)
            }
            NodeOp::BatchNorm { .. } | NodeOp::Relu | NodeOp::Relu6 => {
                Ok(x0.1.expect("elementwise input is dirty").clone())
            }
            NodeOp::AvgPool { kernel } | NodeOp::MaxPool { kernel } => {
                pool_candidate(golden, x0.1.expect("pool input is dirty"), *kernel)
            }
            NodeOp::GlobalAvgPool => {
                let xm = x0.1.expect("gap input is dirty");
                let mut cand = DirtyMask::for_shape(golden.shape())?;
                for p in 0..xm.planes() {
                    if xm.plane_is_dirty(p) {
                        cand.mark_block(p, 0, 0);
                    }
                }
                Ok(cand)
            }
            NodeOp::Linear { .. } => {
                let xm = x0.1.expect("linear input is dirty");
                let mut cand = DirtyMask::for_shape(golden.shape())?;
                let (batch, out_features) = (golden.shape().dims()[0], golden.shape().dims()[1]);
                let per_image = xm.planes() / batch;
                for n in 0..batch {
                    let dirty = (0..per_image).any(|c| xm.plane_is_dirty(n * per_image + c));
                    if dirty {
                        for o in 0..out_features {
                            cand.mark_block(n * out_features + o, 0, 0);
                        }
                    }
                }
                Ok(cand)
            }
            NodeOp::Add => {
                let rhs = x1.expect("Add is binary");
                match (x0.1, rhs.1) {
                    (Some(a), Some(b)) => {
                        let mut m = a.clone();
                        m.union_with(b);
                        Ok(m)
                    }
                    (Some(a), None) => Ok(a.clone()),
                    (None, Some(b)) => Ok(b.clone()),
                    (None, None) => unreachable!("at least one Add input is dirty"),
                }
            }
            NodeOp::DownsamplePad { stride, .. } => {
                down_candidate(golden, x0.0, x0.1.expect("downsample input is dirty"), *stride)
            }
        }
    }

    /// Recomputes the candidate elements of node `id` into `data` (a copy
    /// of the golden activation) with order-exact scalar kernels.
    fn sparse_recompute(
        &self,
        id: NodeId,
        x0: &Tensor,
        x1: Option<&Tensor>,
        cand: &DirtyMask,
        data: &mut [f32],
    ) -> Result<(), sfi_tensor::TensorError> {
        let node = &self.nodes()[id];
        let param = |p: ParamId| &self.store().get(p).expect("validated at construction").tensor;
        match &node.op {
            NodeOp::Input => unreachable!("input node is never re-evaluated"),
            NodeOp::Conv { weight, bias, cfg } => {
                sparse_conv(x0, param(*weight), bias.map(&param), *cfg, cand, data);
            }
            NodeOp::BatchNorm { gamma, beta, mean, var, eps } => {
                let (gs, bs, ms, vs) = (
                    param(*gamma).as_slice(),
                    param(*beta).as_slice(),
                    param(*mean).as_slice(),
                    param(*var).as_slice(),
                );
                let c = x0.shape().c();
                let x = x0.as_slice();
                for_dirty_pixels(cand, |p, y, xx| {
                    let ci = p % c;
                    // Exactly bn_apply's per-channel affine form.
                    let inv_std = 1.0 / (vs[ci] + eps).sqrt();
                    let scale = gs[ci] * inv_std;
                    let shift = bs[ci] - ms[ci] * scale;
                    let idx = (p * cand.height() + y) * cand.width() + xx;
                    data[idx] = x[idx] * scale + shift;
                });
            }
            NodeOp::Relu => {
                let x = x0.as_slice();
                for_dirty_pixels(cand, |p, y, xx| {
                    let idx = (p * cand.height() + y) * cand.width() + xx;
                    data[idx] = if x[idx] < 0.0 { 0.0 } else { x[idx] };
                });
            }
            NodeOp::Relu6 => {
                let x = x0.as_slice();
                for_dirty_pixels(cand, |p, y, xx| {
                    let idx = (p * cand.height() + y) * cand.width() + xx;
                    data[idx] = x[idx].clamp(0.0, 6.0);
                });
            }
            NodeOp::AvgPool { kernel } => {
                let (h_in, w_in) = (x0.shape().h(), x0.shape().w());
                let x = x0.as_slice();
                let k = *kernel;
                let norm = 1.0 / (k * k) as f32;
                for_dirty_pixels(cand, |p, oh, ow| {
                    let chan = &x[p * h_in * w_in..][..h_in * w_in];
                    let mut acc = 0.0f32;
                    for kh in 0..k {
                        for kw in 0..k {
                            acc += chan[(oh * k + kh) * w_in + ow * k + kw];
                        }
                    }
                    data[(p * cand.height() + oh) * cand.width() + ow] = acc * norm;
                });
            }
            NodeOp::MaxPool { kernel } => {
                let (h_in, w_in) = (x0.shape().h(), x0.shape().w());
                let x = x0.as_slice();
                let k = *kernel;
                for_dirty_pixels(cand, |p, oh, ow| {
                    let chan = &x[p * h_in * w_in..][..h_in * w_in];
                    let mut best = f32::NEG_INFINITY;
                    let mut seen = false;
                    for kh in 0..k {
                        for kw in 0..k {
                            let v = chan[(oh * k + kh) * w_in + ow * k + kw];
                            if !v.is_nan() && (v > best || !seen) {
                                best = v;
                                seen = true;
                            }
                        }
                    }
                    data[(p * cand.height() + oh) * cand.width() + ow] =
                        if seen { best } else { f32::NAN };
                });
            }
            NodeOp::GlobalAvgPool => {
                let (h_in, w_in) = (x0.shape().h(), x0.shape().w());
                let x = x0.as_slice();
                let norm = 1.0 / (h_in * w_in) as f32;
                for_dirty_pixels(cand, |p, _, _| {
                    let chan = &x[p * h_in * w_in..][..h_in * w_in];
                    data[p] = chan.iter().sum::<f32>() * norm;
                });
            }
            NodeOp::Linear { weight, bias } => {
                let w = param(*weight);
                let b = bias.map(&param);
                let (out_features, in_features) = (w.shape().dims()[0], w.shape().dims()[1]);
                let batch = cand.planes() / out_features;
                let x = x0.as_slice();
                for n in 0..batch {
                    let dirty =
                        (0..out_features).any(|o| cand.block_is_dirty(n * out_features + o, 0, 0));
                    if !dirty {
                        continue;
                    }
                    let x_row = &x[n * in_features..(n + 1) * in_features];
                    let row = &mut data[n * out_features..(n + 1) * out_features];
                    row.fill(0.0);
                    // Stays on the naive kernel deliberately: n == 1 GEMV
                    // has no output columns to lane across, so the
                    // register-tiled tiers are structurally inapplicable —
                    // `gemm_selected_kernel(m, k, 1)` routes here too.
                    ops::gemm(out_features, in_features, 1, w.as_slice(), x_row, row);
                    if let Some(b) = b {
                        for (v, &bv) in row.iter_mut().zip(b.as_slice()) {
                            *v += bv;
                        }
                    }
                }
            }
            NodeOp::Add => {
                let a = x0.as_slice();
                let bb = x1.expect("Add is binary").as_slice();
                for_dirty_pixels(cand, |p, y, xx| {
                    let idx = (p * cand.height() + y) * cand.width() + xx;
                    data[idx] = a[idx] + bb[idx];
                });
            }
            NodeOp::DownsamplePad { out_channels, stride } => {
                let (c_in, h_in, w_in) = (x0.shape().c(), x0.shape().h(), x0.shape().w());
                let x = x0.as_slice();
                let (oc, s) = (*out_channels, *stride);
                for_dirty_pixels(cand, |p, oh, ow| {
                    let (n, co) = (p / oc, p % oc);
                    debug_assert!(co < c_in, "padded channels are never candidates");
                    let src = ((n * c_in + co) * h_in + oh * s) * w_in + ow * s;
                    data[(p * cand.height() + oh) * cand.width() + ow] = x[src];
                });
            }
        }
        Ok(())
    }
}

/// Copies the golden activation into a working buffer, via the arena when
/// available.
fn golden_copy(golden: &Tensor, arena: Option<&mut ScratchArena>) -> Vec<f32> {
    let g = golden.as_slice();
    let mut data = match arena {
        Some(a) => a.take(g.len()),
        None => vec![0.0f32; g.len()],
    };
    data.copy_from_slice(g);
    data
}

/// Visits every pixel of every dirty block of `mask` as `(plane, y, x)`.
fn for_dirty_pixels(mask: &DirtyMask, mut f: impl FnMut(usize, usize, usize)) {
    for p in 0..mask.planes() {
        for by in 0..mask.blocks_h() {
            for bx in 0..mask.blocks_w() {
                if !mask.block_is_dirty(p, by, bx) {
                    continue;
                }
                let (y0, y1, x0, x1) = mask.block_pixels(by, bx);
                for y in y0..y1 {
                    for x in x0..x1 {
                        f(p, y, x);
                    }
                }
            }
        }
    }
}

/// The final mask of a sparse node: candidate blocks whose recomputed
/// values actually differ bitwise from golden. Blocks outside the
/// candidate are clean by construction and never compared.
fn trimmed_mask(
    golden: &Tensor,
    data: &[f32],
    cand: &DirtyMask,
) -> Result<DirtyMask, sfi_tensor::TensorError> {
    let mut mask = DirtyMask::for_shape(golden.shape())?;
    let g = golden.as_slice();
    let (h, w) = (cand.height(), cand.width());
    for p in 0..cand.planes() {
        for by in 0..cand.blocks_h() {
            for bx in 0..cand.blocks_w() {
                if !cand.block_is_dirty(p, by, bx) {
                    continue;
                }
                let (y0, y1, x0, x1) = cand.block_pixels(by, bx);
                let differs = (y0..y1).any(|y| {
                    let row = (p * h + y) * w;
                    g[row + x0..row + x1]
                        .iter()
                        .zip(&data[row + x0..row + x1])
                        .any(|(a, b)| a.to_bits() != b.to_bits())
                });
                if differs {
                    mask.mark_block(p, by, bx);
                }
            }
        }
    }
    Ok(mask)
}

/// Input dirty-block range touched by output pixels `[p0, p1)` of a
/// stride/kernel/pad windowed op, clipped to `limit` input pixels. Returns
/// an empty range when the window lies entirely in the padding.
fn window_block_range(
    p0: usize,
    p1: usize,
    stride: usize,
    k: usize,
    pad: usize,
    limit: usize,
) -> (usize, usize) {
    let lo = (p0 * stride) as isize - pad as isize;
    let hi = ((p1 - 1) * stride + k - 1) as isize - pad as isize;
    if hi < 0 {
        return (0, 0);
    }
    let lo = lo.max(0) as usize;
    let hi = (hi as usize).min(limit.saturating_sub(1));
    if lo > hi {
        return (0, 0);
    }
    (lo / DIRTY_BLOCK, hi / DIRTY_BLOCK + 1)
}

/// Resolves a conv's padding exactly as `Conv2dCfg::resolve_padding` does.
fn resolve_pad(cfg: Conv2dCfg, k_h: usize, k_w: usize) -> usize {
    match cfg.padding {
        Padding::Same => (k_h.max(k_w) - 1) / 2,
        Padding::Explicit(p) => p,
    }
}

/// Candidate mask of a convolution: an output block is dirty for *every*
/// channel of group `g` when its receptive field intersects a dirty block
/// of any of `g`'s input channels (grouped convs confine the channel
/// spread; the bitwise trim pass removes the conservatism).
fn conv_candidate(
    golden: &Tensor,
    input: &Tensor,
    k_h: usize,
    k_w: usize,
    cfg: Conv2dCfg,
    xm: &DirtyMask,
) -> Result<DirtyMask, sfi_tensor::TensorError> {
    let mut cand = DirtyMask::for_shape(golden.shape())?;
    let (batch, c_out) = (golden.shape().n(), golden.shape().c());
    let (c_in, h_in, w_in) = (input.shape().c(), input.shape().h(), input.shape().w());
    let groups = cfg.groups;
    let (cpg_in, cpg_out) = (c_in / groups, c_out / groups);
    let pad = resolve_pad(cfg, k_h, k_w);
    for n in 0..batch {
        for g in 0..groups {
            let any_chan_dirty =
                (0..cpg_in).any(|ci_g| xm.plane_is_dirty(n * c_in + g * cpg_in + ci_g));
            if !any_chan_dirty {
                continue;
            }
            for by in 0..cand.blocks_h() {
                for bx in 0..cand.blocks_w() {
                    let (y0, y1, x0, x1) = cand.block_pixels(by, bx);
                    let (iby0, iby1) = window_block_range(y0, y1, cfg.stride, k_h, pad, h_in);
                    let (ibx0, ibx1) = window_block_range(x0, x1, cfg.stride, k_w, pad, w_in);
                    if iby0 >= iby1 || ibx0 >= ibx1 {
                        continue;
                    }
                    let hit = (0..cpg_in).any(|ci_g| {
                        xm.any_in(n * c_in + g * cpg_in + ci_g, iby0, iby1, ibx0, ibx1)
                    });
                    if hit {
                        for co_g in 0..cpg_out {
                            cand.mark_block(n * c_out + g * cpg_out + co_g, by, bx);
                        }
                    }
                }
            }
        }
    }
    Ok(cand)
}

/// Candidate mask of an evenly-divided pooling op (window == stride == `k`).
fn pool_candidate(
    golden: &Tensor,
    xm: &DirtyMask,
    k: usize,
) -> Result<DirtyMask, sfi_tensor::TensorError> {
    let mut cand = DirtyMask::for_shape(golden.shape())?;
    for p in 0..cand.planes() {
        if !xm.plane_is_dirty(p) {
            continue;
        }
        for by in 0..cand.blocks_h() {
            for bx in 0..cand.blocks_w() {
                let (y0, y1, x0, x1) = cand.block_pixels(by, bx);
                let (iby0, iby1) = (y0 * k / DIRTY_BLOCK, (y1 * k - 1) / DIRTY_BLOCK + 1);
                let (ibx0, ibx1) = (x0 * k / DIRTY_BLOCK, (x1 * k - 1) / DIRTY_BLOCK + 1);
                if xm.any_in(p, iby0, iby1, ibx0, ibx1) {
                    cand.mark_block(p, by, bx);
                }
            }
        }
    }
    Ok(cand)
}

/// Candidate mask of the parameter-free strided downsample: only sampled
/// input pixels (multiples of `stride`) can propagate; padded channels are
/// always clean.
fn down_candidate(
    golden: &Tensor,
    input: &Tensor,
    xm: &DirtyMask,
    stride: usize,
) -> Result<DirtyMask, sfi_tensor::TensorError> {
    let mut cand = DirtyMask::for_shape(golden.shape())?;
    let (batch, oc) = (golden.shape().n(), golden.shape().c());
    let c_in = input.shape().c();
    for n in 0..batch {
        for co in 0..c_in {
            let in_plane = n * c_in + co;
            if !xm.plane_is_dirty(in_plane) {
                continue;
            }
            let out_plane = n * oc + co;
            for by in 0..cand.blocks_h() {
                for bx in 0..cand.blocks_w() {
                    let (y0, y1, x0, x1) = cand.block_pixels(by, bx);
                    let (iby0, iby1) =
                        (y0 * stride / DIRTY_BLOCK, ((y1 - 1) * stride) / DIRTY_BLOCK + 1);
                    let (ibx0, ibx1) =
                        (x0 * stride / DIRTY_BLOCK, ((x1 - 1) * stride) / DIRTY_BLOCK + 1);
                    if xm.any_in(in_plane, iby0, iby1, ibx0, ibx1) {
                        cand.mark_block(out_plane, by, bx);
                    }
                }
            }
        }
    }
    Ok(cand)
}

/// Order-exact scalar convolution over the candidate region.
///
/// The im2col path computes each output element as `acc = Σ_k w[k]·col[k]`
/// with `k = (ci_g·k_h + kh)·k_w + kw` ascending, padding multiplied as
/// explicit zeros, and the bias added *after* the GEMM with a separate
/// `+=`. The depthwise kernel instead *skips* out-of-bounds taps and
/// writes `acc + base` in one add. Both forms are replicated exactly so
/// NaN/Inf weights produce identical bits (e.g. `0.0 × NaN = NaN` at
/// padded border pixels of the im2col family).
fn sparse_conv(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    cfg: Conv2dCfg,
    cand: &DirtyMask,
    data: &mut [f32],
) {
    let (c_in, h_in, w_in) = (input.shape().c(), input.shape().h(), input.shape().w());
    let (c_out, cpg_in, k_h, k_w) =
        (weight.shape().n(), weight.shape().c(), weight.shape().h(), weight.shape().w());
    let groups = cfg.groups;
    let cpg_out = c_out / groups;
    let pad = resolve_pad(cfg, k_h, k_w) as isize;
    let (h_out, w_out) = (cand.height(), cand.width());
    let x = input.as_slice();
    let w = weight.as_slice();
    let depthwise = groups == c_in && c_out == c_in && cpg_in == 1;
    for_dirty_pixels(cand, |p, oh, ow| {
        let (n, co) = (p / c_out, p % c_out);
        let g = co / cpg_out;
        let out_idx = (p * h_out + oh) * w_out + ow;
        if depthwise {
            let in_chan = &x[(n * c_in + co) * h_in * w_in..][..h_in * w_in];
            let w_chan = &w[co * k_h * k_w..][..k_h * k_w];
            let base = bias.map_or(0.0, |b| b.as_slice()[co]);
            let mut acc = 0.0f32;
            for kh in 0..k_h {
                let ih = (oh * cfg.stride + kh) as isize - pad;
                if ih < 0 || ih as usize >= h_in {
                    continue;
                }
                for kw in 0..k_w {
                    let iw = (ow * cfg.stride + kw) as isize - pad;
                    if iw < 0 || iw as usize >= w_in {
                        continue;
                    }
                    acc += in_chan[ih as usize * w_in + iw as usize] * w_chan[kh * k_w + kw];
                }
            }
            data[out_idx] = acc + base;
        } else {
            let mut acc = 0.0f32;
            for ci_g in 0..cpg_in {
                let ci = g * cpg_in + ci_g;
                let in_chan = &x[(n * c_in + ci) * h_in * w_in..][..h_in * w_in];
                for kh in 0..k_h {
                    let ih = (oh * cfg.stride + kh) as isize - pad;
                    let row_ok = ih >= 0 && (ih as usize) < h_in;
                    for kw in 0..k_w {
                        let iw = (ow * cfg.stride + kw) as isize - pad;
                        let v = if row_ok && iw >= 0 && (iw as usize) < w_in {
                            in_chan[ih as usize * w_in + iw as usize]
                        } else {
                            0.0
                        };
                        acc += w[((co * cpg_in + ci_g) * k_h + kh) * k_w + kw] * v;
                    }
                }
            }
            if let Some(b) = bias {
                acc += b.as_slice()[co];
            }
            data[out_idx] = acc;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Node, ParamKind, ParameterStore};

    fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
        a.shape() == b.shape()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    /// conv(1->2, 3x3) -> relu -> gap -> linear, as in model.rs tests.
    fn tiny_model() -> Model {
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 9.0) * 0.1),
        );
        let w1 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([3, 2], |i| (i as f32 - 3.0) * 0.5),
        );
        let b1 = store.push("fc.bias", ParamKind::Bias, Tensor::from_fn([3], |i| i as f32 * 0.1));
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::unary(NodeOp::GlobalAvgPool, 2),
            Node::unary(NodeOp::Linear { weight: w1, bias: Some(b1) }, 3),
        ];
        Model::new("tiny", nodes, store, vec![1, 4, 4]).unwrap()
    }

    /// Runs forward_delta (with the given saturation) and asserts the
    /// outcome is indistinguishable from dense forward_from: bit-identical
    /// logits on divergence, bit-golden final activation on convergence.
    fn assert_delta_exact(
        faulty: &Model,
        first_dirty: NodeId,
        cache: &ActivationCache,
        dirty_unit: Option<usize>,
        saturation: f64,
        ctx: &str,
    ) -> (ForwardOutcome, DeltaStats) {
        let input = cache.get(0).unwrap();
        let lowered = match &faulty.nodes()[first_dirty].op {
            NodeOp::Conv { weight, cfg, .. }
                if ops::conv2d_uses_lowering(
                    input,
                    &faulty.store().get(*weight).unwrap().tensor,
                    *cfg,
                ) =>
            {
                Some(
                    ops::im2col_lower(
                        cache.get(first_dirty - 1).unwrap_or(input),
                        &faulty.store().get(*weight).unwrap().tensor,
                        *cfg,
                    )
                    .unwrap(),
                )
            }
            _ => None,
        };
        let dense = faulty.forward_from(first_dirty, cache).unwrap();
        let mut arena = ScratchArena::new();
        let (out, stats) = faulty
            .forward_delta(
                first_dirty,
                cache,
                &mut DeltaOptions {
                    arena: Some(&mut arena),
                    lowered: lowered.as_ref().map(|l| (first_dirty, l)),
                    dirty_unit,
                    saturation,
                },
            )
            .unwrap();
        match &out {
            ForwardOutcome::Logits(l) => {
                assert!(bits_eq(l, &dense), "{ctx}: delta logits diverge from dense");
            }
            ForwardOutcome::Converged { at_node } => {
                let golden = cache.get(cache.len() - 1).unwrap();
                assert!(bits_eq(&dense, golden), "{ctx}: spurious convergence at node {at_node}");
            }
        }
        // No-arena run must agree with the arena run exactly.
        let (out2, _) = faulty
            .forward_delta(
                first_dirty,
                cache,
                &mut DeltaOptions {
                    lowered: lowered.as_ref().map(|l| (first_dirty, l)),
                    dirty_unit,
                    saturation,
                    ..Default::default()
                },
            )
            .unwrap();
        match (&out, &out2) {
            (ForwardOutcome::Logits(a), ForwardOutcome::Logits(b)) => {
                assert!(bits_eq(a, b), "{ctx}: arena changed the bits");
            }
            (a, b) => assert_eq!(a, b, "{ctx}: arena changed the outcome"),
        }
        (out, stats)
    }

    #[test]
    fn delta_matches_dense_on_a_diverging_fault() {
        let m = tiny_model();
        let input = Tensor::from_fn([2, 1, 4, 4], |i| (i as f32).sin());
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[0] += 100.0;
        let unit = faulty.param_output_unit(0, 0);
        let (out, stats) = assert_delta_exact(&faulty, 1, &cache, unit, 0.95, "diverging conv");
        assert!(matches!(out, ForwardOutcome::Logits(_)));
        assert!(stats.sparse_nodes > 0, "seed must be sparse: {stats:?}");
        assert!(stats.dirty_blocks > 0);
    }

    #[test]
    fn zero_delta_fast_path_does_no_per_node_work() {
        // All-zero input: every conv product is 0.0 * w, so a finite weight
        // change leaves the channel bit-identical. The unit seed proves the
        // mask empty and the pass stops without touching any other node.
        let m = tiny_model();
        let input = Tensor::zeros([1, 1, 4, 4]);
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[13] *= 1.5;
        let (out, stats) =
            assert_delta_exact(&faulty, 1, &cache, Some(1), DELTA_SATURATION_DEFAULT, "masked");
        assert_eq!(out, ForwardOutcome::Converged { at_node: 1 });
        assert_eq!(
            stats,
            DeltaStats { sparse_nodes: 0, dense_nodes: 0, clean_nodes: 1, dirty_blocks: 0 },
            "a masked fault must do zero per-node work"
        );
    }

    #[test]
    fn saturation_boundary_at_threshold_goes_dense() {
        // A whole-channel conv fault makes the ReLU candidate fraction
        // exactly 0.5 (one of two channels fully dirty). saturation == that
        // fraction must fall back dense (>=); just above keeps it sparse.
        // Classifications stay bit-identical either way.
        let m = tiny_model();
        let input = Tensor::from_fn([1, 1, 4, 4], |i| (i as f32).cos());
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[0] = 7.0;
        let (_, at) = assert_delta_exact(&faulty, 1, &cache, Some(0), 0.5, "at threshold");
        let (_, over) = assert_delta_exact(&faulty, 1, &cache, Some(0), 0.5001, "over threshold");
        assert!(at.dense_nodes > over.dense_nodes, "at: {at:?}, over: {over:?}");
        assert!(over.sparse_nodes > at.sparse_nodes, "at: {at:?}, over: {over:?}");
        // saturation 0.0 forces every dirty node dense; 1.1 keeps all sparse.
        let (_, all_dense) = assert_delta_exact(&faulty, 1, &cache, Some(0), 0.0, "all dense");
        assert_eq!(all_dense.sparse_nodes, 1, "only the unit seed stays sparse: {all_dense:?}");
        let (_, all_sparse) = assert_delta_exact(&faulty, 1, &cache, Some(0), 1.1, "all sparse");
        assert_eq!(all_sparse.dense_nodes, 0, "{all_sparse:?}");
    }

    #[test]
    fn delta_through_stride2_and_grouped_conv() {
        // conv(2->4, stride 2, groups 2) -> relu -> gap -> linear; fault in
        // the first conv so the delta crosses the strided grouped geometry.
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv1.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 8.0) * 0.11),
        );
        let w1 = store.push(
            "conv2.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([4, 1, 3, 3], |i| ((i * 5) % 17) as f32 * 0.07 - 0.5),
        );
        let w2 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 2 },
            Tensor::from_fn([3, 4], |i| (i as f32 - 5.0) * 0.3),
        );
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::unary(
                NodeOp::Conv { weight: w1, bias: None, cfg: Conv2dCfg::same(2).with_groups(2) },
                2,
            ),
            Node::unary(NodeOp::Relu, 3),
            Node::unary(NodeOp::GlobalAvgPool, 4),
            Node::unary(NodeOp::Linear { weight: w2, bias: None }, 5),
        ];
        let m = Model::new("strided", nodes, store, vec![1, 8, 8]).unwrap();
        let input = Tensor::from_fn([2, 1, 8, 8], |i| ((i * 3) % 7) as f32 * 0.2 - 0.5);
        let cache = m.forward_cached(&input).unwrap();
        for (idx, val) in [(0usize, 5.0f32), (4, f32::NAN), (10, -9.0)] {
            let mut faulty = m.clone();
            faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[idx] = val;
            let unit = faulty.param_output_unit(0, idx);
            assert_delta_exact(&faulty, 1, &cache, unit, 0.95, &format!("w0[{idx}]={val}"));
        }
        // Fault inside the grouped conv itself: seeds at node 3 from its
        // golden (recomputed-prefix) input.
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(1).unwrap().tensor.as_mut_slice()[11] = f32::INFINITY;
        let unit = faulty.param_output_unit(1, 11);
        assert_delta_exact(&faulty, 3, &cache, unit, 0.95, "grouped conv fault");
    }

    #[test]
    fn delta_through_depthwise_conv() {
        // conv(1->2) -> relu -> depthwise conv(2->2, groups 2) -> gap -> fc.
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 9.0) * 0.1),
        );
        let dw = store.push(
            "dw.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([2, 1, 3, 3], |i| ((i * 7) % 5) as f32 * 0.15 - 0.2),
        );
        let dwb = store.push("dw.bias", ParamKind::Bias, Tensor::from_fn([2], |i| i as f32 * 0.4));
        let w1 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 2 },
            Tensor::from_fn([3, 2], |i| (i as f32 - 3.0) * 0.5),
        );
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::unary(
                NodeOp::Conv {
                    weight: dw,
                    bias: Some(dwb),
                    cfg: Conv2dCfg::same(1).with_groups(2),
                },
                2,
            ),
            Node::unary(NodeOp::GlobalAvgPool, 3),
            Node::unary(NodeOp::Linear { weight: w1, bias: None }, 4),
        ];
        let m = Model::new("dw", nodes, store, vec![1, 6, 6]).unwrap();
        let input = Tensor::from_fn([1, 1, 6, 6], |i| (i as f32 * 0.7).sin());
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[2] = -4.0;
        let unit = faulty.param_output_unit(0, 2);
        let (_, stats) = assert_delta_exact(&faulty, 1, &cache, unit, 0.95, "through depthwise");
        assert!(stats.sparse_nodes > 0);
    }

    #[test]
    fn skip_connection_remerges_dirty_and_clean_branches() {
        // The ReLU output re-converges to golden while the conv output it
        // shadows stays dirty and flows around it through the Add. The
        // delta pass must keep the dirty branch alive and reproduce dense
        // bits at the merge.
        let mut store = ParameterStore::new();
        let w0 = store.push(
            "conv.weight",
            ParamKind::Weight { layer: 0 },
            Tensor::from_fn([2, 1, 3, 3], |i| (i as f32 - 9.0) * 0.1),
        );
        let w1 = store.push(
            "fc.weight",
            ParamKind::Weight { layer: 1 },
            Tensor::from_fn([3, 2], |i| (i as f32 - 3.0) * 0.5),
        );
        let nodes = vec![
            Node { op: NodeOp::Input, inputs: vec![] },
            Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
            Node::unary(NodeOp::Relu, 1),
            Node::binary(NodeOp::Add, 2, 1),
            Node::unary(NodeOp::GlobalAvgPool, 3),
            Node::unary(NodeOp::Linear { weight: w1, bias: None }, 4),
        ];
        let m = Model::new("skip", nodes, store, vec![1, 4, 4]).unwrap();
        let input = Tensor::full([1, 1, 4, 4], -1.0);
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[13] *= 1.5;
        // Sanity: the trap is live — ReLU golden, conv dirty.
        let refreshed = faulty.forward_cached(&input).unwrap();
        assert!(refreshed.get(2).unwrap().bits_equal(cache.get(2).unwrap()));
        assert!(!refreshed.get(1).unwrap().bits_equal(cache.get(1).unwrap()));
        let (out, stats) = assert_delta_exact(&faulty, 1, &cache, Some(1), 0.95, "skip remerge");
        assert!(
            matches!(out, ForwardOutcome::Logits(_)),
            "must not converge past a live dirty skip input"
        );
        assert!(stats.clean_nodes >= 1, "the ReLU trims to a clean node: {stats:?}");
    }

    #[test]
    fn dense_fallback_and_sparse_agree_under_nonfinite_faults() {
        let m = tiny_model();
        let input = Tensor::from_fn([2, 1, 4, 4], |i| (i as f32 * 0.3).cos());
        let cache = m.forward_cached(&input).unwrap();
        for val in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 3.4e38, -1.2e-38] {
            let mut faulty = m.clone();
            faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[4] = val;
            let unit = faulty.param_output_unit(0, 4);
            let sparse =
                assert_delta_exact(&faulty, 1, &cache, unit, 1.1, &format!("sparse {val}"));
            let dense = assert_delta_exact(&faulty, 1, &cache, unit, 0.0, &format!("dense {val}"));
            match (&sparse.0, &dense.0) {
                (ForwardOutcome::Logits(a), ForwardOutcome::Logits(b)) => {
                    assert!(bits_eq(a, b), "saturation policy changed the bits for {val}");
                }
                (a, b) => assert_eq!(a, b, "saturation policy changed the outcome for {val}"),
            }
        }
    }

    #[test]
    fn seed_without_unit_probe_is_exact() {
        // No dirty_unit and no lowering: the seed falls back to a dense
        // node evaluation plus a full bit-diff.
        let m = tiny_model();
        let input = Tensor::from_fn([1, 1, 4, 4], |i| (i as f32).sin());
        let cache = m.forward_cached(&input).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(0).unwrap().tensor.as_mut_slice()[0] += 100.0;
        let dense = faulty.forward_from(1, &cache).unwrap();
        let (out, stats) = faulty
            .forward_delta(1, &cache, &mut DeltaOptions { saturation: 1.1, ..Default::default() })
            .unwrap();
        match out {
            ForwardOutcome::Logits(l) => assert!(bits_eq(&l, &dense)),
            ForwardOutcome::Converged { .. } => panic!("fault diverges"),
        }
        assert_eq!(stats.dense_nodes, 1, "seed is the only dense node: {stats:?}");
    }

    #[test]
    fn linear_seed_probe_is_exact() {
        let m = tiny_model();
        let input = Tensor::from_fn([2, 1, 4, 4], |i| (i as f32).sin());
        let cache = m.forward_cached(&input).unwrap();
        let fc = m.node_of_param(1).unwrap();
        let mut faulty = m.clone();
        faulty.store_mut().get_mut(1).unwrap().tensor.as_mut_slice()[5] += 7.0;
        let unit = faulty.param_output_unit(1, 5);
        let (out, _) = assert_delta_exact(&faulty, fc, &cache, unit, 0.95, "fc row");
        assert!(matches!(out, ForwardOutcome::Logits(_)));
    }

    #[test]
    fn delta_site_matches_dense_patched_forward() {
        let m = tiny_model();
        let input = Tensor::from_fn([1, 1, 4, 4], |i| (i as f32).sin());
        let cache = m.forward_cached(&input).unwrap();
        // Strike every node (input included) at a fixed element with a
        // sign-bit flip; delta must match the dense patched forward bitwise.
        for node in 0..cache.len() {
            let golden = cache.get(node).unwrap();
            let element = golden.len() / 2;
            let faulty_bits = golden.as_slice()[element].to_bits() ^ (1 << 31);
            let dense = m
                .forward_patched(node, &cache, |t| {
                    let s = t.as_mut_slice();
                    s[element] = f32::from_bits(s[element].to_bits() ^ (1 << 31));
                })
                .unwrap();
            for saturation in [0.0, DELTA_SATURATION_DEFAULT, 1.1] {
                let mut arena = ScratchArena::new();
                let (out, _) = m
                    .forward_delta_site(
                        node,
                        element,
                        faulty_bits,
                        &cache,
                        &mut DeltaOptions {
                            arena: Some(&mut arena),
                            saturation,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                match out {
                    ForwardOutcome::Logits(l) => assert!(
                        bits_eq(&l, &dense),
                        "node {node} sat {saturation}: delta-site logits diverge"
                    ),
                    ForwardOutcome::Converged { at_node } => {
                        let g = cache.get(cache.len() - 1).unwrap();
                        assert!(
                            bits_eq(&dense, g),
                            "node {node} sat {saturation}: spurious convergence at {at_node}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn delta_site_masks_identical_bits_without_work() {
        let m = tiny_model();
        let input = Tensor::from_fn([1, 1, 4, 4], |i| i as f32 * 0.1);
        let cache = m.forward_cached(&input).unwrap();
        let golden_bits = cache.get(2).unwrap().as_slice()[3].to_bits();
        let (out, stats) =
            m.forward_delta_site(2, 3, golden_bits, &cache, &mut DeltaOptions::default()).unwrap();
        assert_eq!(out, ForwardOutcome::Converged { at_node: 2 });
        assert_eq!(
            stats,
            DeltaStats { sparse_nodes: 0, dense_nodes: 0, clean_nodes: 1, dirty_blocks: 0 }
        );
    }

    #[test]
    fn delta_site_input_fault_propagates_from_node_zero() {
        let m = tiny_model();
        let input = Tensor::from_fn([1, 1, 4, 4], |i| (i as f32 * 0.3).cos());
        let cache = m.forward_cached(&input).unwrap();
        let faulty_bits = input.as_slice()[7].to_bits() ^ (0x5 << 20);
        let dense = m
            .forward_patched(0, &cache, |t| {
                let s = t.as_mut_slice();
                s[7] = f32::from_bits(s[7].to_bits() ^ (0x5 << 20));
            })
            .unwrap();
        let (out, stats) =
            m.forward_delta_site(0, 7, faulty_bits, &cache, &mut DeltaOptions::default()).unwrap();
        match out {
            ForwardOutcome::Logits(l) => assert!(bits_eq(&l, &dense)),
            ForwardOutcome::Converged { at_node } => {
                let g = cache.get(cache.len() - 1).unwrap();
                assert!(bits_eq(&dense, g), "spurious convergence at {at_node}");
            }
        }
        assert!(stats.sparse_nodes > 0 || stats.dense_nodes > 0);
    }

    #[test]
    fn delta_site_rejects_out_of_range_sites() {
        let m = tiny_model();
        let input = Tensor::zeros([1, 1, 4, 4]);
        let cache = m.forward_cached(&input).unwrap();
        assert!(matches!(
            m.forward_delta_site(99, 0, 0, &cache, &mut DeltaOptions::default()),
            Err(NnError::CacheMismatch { .. })
        ));
        assert!(matches!(
            m.forward_delta_site(1, usize::MAX, 0, &cache, &mut DeltaOptions::default()),
            Err(NnError::CacheMismatch { .. })
        ));
    }

    #[test]
    fn rejects_foreign_cache_and_passes_through_past_end() {
        let m = tiny_model();
        let input = Tensor::from_fn([1, 1, 4, 4], |i| i as f32 * 0.1);
        let cache = m.forward_cached(&input).unwrap();
        let foreign = m.forward_cached(&input).unwrap();
        drop(foreign);
        let bad = crate::Model::new(
            "other",
            vec![Node { op: NodeOp::Input, inputs: vec![] }],
            ParameterStore::new(),
            vec![1, 4, 4],
        )
        .unwrap();
        let bad_cache = bad.forward_cached(&Tensor::zeros([1, 1, 4, 4])).unwrap();
        assert!(matches!(
            m.forward_delta(1, &bad_cache, &mut DeltaOptions::default()),
            Err(NnError::CacheMismatch { .. })
        ));
        let (out, _) = m.forward_delta(999, &cache, &mut DeltaOptions::default()).unwrap();
        match out {
            ForwardOutcome::Logits(l) => {
                assert!(bits_eq(&l, cache.get(cache.len() - 1).unwrap()));
            }
            _ => panic!("past-end must return cached logits"),
        }
    }
}
