use std::fmt;

use sfi_tensor::TensorError;

/// Error type for model construction and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor operation inside a node failed.
    Op {
        /// Index of the node whose operator failed.
        node: usize,
        /// The underlying tensor error.
        source: TensorError,
    },
    /// The graph referenced a node that does not precede the referencing
    /// node (or does not exist).
    InvalidGraph {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A parameter id did not resolve to a parameter of the expected kind.
    InvalidParameter {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// The input tensor shape did not match the model's expected input.
    InputShape {
        /// Expected input dimensions (excluding batch).
        expected: Vec<usize>,
        /// The offending shape's dimensions.
        actual: Vec<usize>,
    },
    /// An activation cache was used with a model it does not belong to.
    CacheMismatch {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Op { node, source } => write!(f, "node {node}: {source}"),
            NnError::InvalidGraph { reason } => write!(f, "invalid graph: {reason}"),
            NnError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            NnError::InputShape { expected, actual } => {
                write!(f, "input shape {actual:?} does not match expected {expected:?}")
            }
            NnError::CacheMismatch { reason } => write!(f, "cache mismatch: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Op { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn op_error_exposes_source() {
        use std::error::Error;
        let err = NnError::Op { node: 3, source: TensorError::Empty { op: "softmax" } };
        assert!(err.source().is_some());
        assert!(err.to_string().contains("node 3"));
    }
}
