//! CIFAR-10 ResNet topologies (He et al. 2016), notably **ResNet-20** — the
//! paper's first case study.
//!
//! The CIFAR ResNet family uses a 3×3 stem convolution, three stages of `n`
//! basic blocks (two 3×3 convolutions each) at 16/32/64 channels, identity
//! shortcuts with the parameter-free "option A" downsample at stage
//! transitions, global average pooling and a linear classifier. ResNet-20 is
//! `n = 3`: 19 convolution layers + 1 linear layer = **20 weight layers**
//! holding 268,336 weights — matching the per-layer "Parameters" column of
//! paper Table I (which reports 268,346 because it folds the 10 classifier
//! biases into layer 11; see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};

use sfi_tensor::ops::Conv2dCfg;

use crate::builder::GraphBuilder;
use crate::{init, Model, NnError, NodeId};

/// Configuration of a CIFAR ResNet.
///
/// # Example
///
/// ```
/// use sfi_nn::resnet::ResNetConfig;
///
/// let cfg = ResNetConfig::resnet20();
/// assert_eq!(cfg.depth(), 20);
/// // A quarter-width variant for cheap exhaustive experiments.
/// let micro = ResNetConfig::resnet20().with_width(4);
/// assert_eq!(micro.base_width, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResNetConfig {
    /// Channel count of the first stage (paper network: 16). Stages two and
    /// three use `2×` and `4×` this width.
    pub base_width: usize,
    /// Basic blocks per stage (ResNet-20: 3, ResNet-32: 5, …).
    pub blocks_per_stage: usize,
    /// Number of output classes (CIFAR-10: 10).
    pub classes: usize,
    /// Input spatial size (CIFAR: 32).
    pub input_size: usize,
}

impl ResNetConfig {
    /// The paper's ResNet-20: width 16, 3 blocks per stage, 10 classes,
    /// 32×32 inputs.
    pub fn resnet20() -> Self {
        Self { base_width: 16, blocks_per_stage: 3, classes: 10, input_size: 32 }
    }

    /// A reduced-width, reduced-resolution variant whose full fault space is
    /// small enough for exhaustive injection on a laptop: width 2,
    /// 16×16 inputs (4,310 weights, 275,840 stuck-at faults).
    pub fn resnet20_micro() -> Self {
        Self { base_width: 2, blocks_per_stage: 3, classes: 10, input_size: 16 }
    }

    /// Returns a copy with a different base width.
    pub fn with_width(mut self, base_width: usize) -> Self {
        self.base_width = base_width;
        self
    }

    /// Returns a copy with a different input resolution.
    pub fn with_input_size(mut self, input_size: usize) -> Self {
        self.input_size = input_size;
        self
    }

    /// The network depth `6n + 2` (ResNet-20 for `n = 3`).
    pub fn depth(&self) -> usize {
        6 * self.blocks_per_stage + 2
    }

    /// Builds the model with zeroed parameters.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is degenerate (zero width,
    /// blocks, classes, or an input size not divisible by 4).
    pub fn build(&self) -> Result<Model, NnError> {
        if self.base_width == 0 || self.blocks_per_stage == 0 || self.classes == 0 {
            return Err(NnError::InvalidGraph {
                reason: "width, blocks and classes must be nonzero".into(),
            });
        }
        if !self.input_size.is_multiple_of(4) || self.input_size == 0 {
            return Err(NnError::InvalidGraph {
                reason: format!("input size {} must be a positive multiple of 4", self.input_size),
            });
        }
        let mut b = GraphBuilder::new();
        let w = self.base_width;

        // Stem.
        let mut x = b.conv("conv0", 0, 3, w, 3, Conv2dCfg::same(1));
        x = b.batch_norm("bn0", x, w);
        x = b.relu(x);

        // Three stages at widths w, 2w, 4w.
        let mut c_in = w;
        for (stage, &c_out) in [w, 2 * w, 4 * w].iter().enumerate() {
            for block in 0..self.blocks_per_stage {
                let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                let name = format!("stage{}.block{}", stage + 1, block);
                x = basic_block(&mut b, &name, x, c_in, c_out, stride);
                c_in = c_out;
            }
        }

        // Head.
        x = b.global_avg_pool(x);
        let _ = b.linear("fc", x, 4 * w, self.classes);
        b.finish(format!("resnet{}", self.depth()), vec![3, self.input_size, self.input_size])
    }

    /// Builds the model and initialises every parameter from `seed`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResNetConfig::build`].
    pub fn build_seeded(&self, seed: u64) -> Result<Model, NnError> {
        let mut model = self.build()?;
        init::initialize_seeded(model.store_mut(), seed);
        Ok(model)
    }
}

impl Default for ResNetConfig {
    fn default() -> Self {
        Self::resnet20()
    }
}

/// A CIFAR basic block: two 3×3 convolutions with BN, an identity (or
/// option-A downsample) shortcut, and post-add ReLU.
fn basic_block(
    b: &mut GraphBuilder,
    name: &str,
    input: NodeId,
    c_in: usize,
    c_out: usize,
    stride: usize,
) -> NodeId {
    let mut x = b.conv(&format!("{name}.conv1"), input, c_in, c_out, 3, Conv2dCfg::same(stride));
    x = b.batch_norm(&format!("{name}.bn1"), x, c_out);
    x = b.relu(x);
    x = b.conv(&format!("{name}.conv2"), x, c_out, c_out, 3, Conv2dCfg::same(1));
    x = b.batch_norm(&format!("{name}.bn2"), x, c_out);
    let shortcut =
        if stride != 1 || c_in != c_out { b.downsample_pad(input, c_out, stride) } else { input };
    let sum = b.add(x, shortcut);
    b.relu(sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfi_tensor::Tensor;

    /// Paper Table I, "Parameters" column (conv/linear weights only; the
    /// paper's layer 11 additionally counts the 10 classifier biases).
    const TABLE1_PARAMS: [usize; 20] = [
        432, 2_304, 2_304, 2_304, 2_304, 2_304, 2_304, 4_608, 9_216, 9_216, 9_216, 9_216, 9_216,
        18_432, 36_864, 36_864, 36_864, 36_864, 36_864, 640,
    ];

    #[test]
    fn resnet20_matches_paper_layer_structure() {
        let m = ResNetConfig::resnet20().build().unwrap();
        let layers = m.weight_layers();
        assert_eq!(layers.len(), 20);
        for (l, &expected) in layers.iter().zip(&TABLE1_PARAMS) {
            assert_eq!(l.len, expected, "layer {} ({})", l.layer, l.name);
        }
        assert_eq!(m.store().total_weights(), 268_336);
    }

    #[test]
    fn resnet20_forward_shape_and_determinism() {
        let m = ResNetConfig::resnet20().with_width(4).build_seeded(11).unwrap();
        let input = Tensor::from_fn([1, 3, 32, 32], |i| ((i % 255) as f32 / 255.0) - 0.5);
        let a = m.forward(&input).unwrap();
        let b = m.forward(&input).unwrap();
        assert_eq!(a.shape().dims(), &[1, 10]);
        assert_eq!(a, b);
        assert!(a.iter().all(f32::is_finite));
    }

    #[test]
    fn micro_variant_is_small() {
        let m = ResNetConfig::resnet20_micro().build().unwrap();
        assert_eq!(m.weight_layers().len(), 20);
        assert_eq!(m.store().total_weights(), 4_310);
    }

    #[test]
    fn width_scales_quadratically() {
        let full = ResNetConfig::resnet20().build().unwrap().store().total_weights();
        let half = ResNetConfig::resnet20().with_width(8).build().unwrap().store().total_weights();
        // Inner convs scale with width²; stem and fc scale linearly.
        assert!(half * 3 < full, "half {half} vs full {full}");
    }

    #[test]
    fn stage_transitions_downsample() {
        let m = ResNetConfig::resnet20().with_width(2).build_seeded(5).unwrap();
        // 32x32 -> stage2 16x16 -> stage3 8x8 -> gap [N, 8].
        let out = m.forward(&Tensor::zeros([1, 3, 32, 32])).unwrap();
        assert_eq!(out.shape().dims(), &[1, 10]);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ResNetConfig::resnet20().with_width(0).build().is_err());
        assert!(ResNetConfig { blocks_per_stage: 0, ..ResNetConfig::resnet20() }.build().is_err());
        assert!(ResNetConfig::resnet20().with_input_size(30).build().is_err());
    }

    #[test]
    fn seeded_builds_are_reproducible() {
        let a = ResNetConfig::resnet20_micro().build_seeded(42).unwrap();
        let b = ResNetConfig::resnet20_micro().build_seeded(42).unwrap();
        assert_eq!(a.store(), b.store());
    }

    #[test]
    fn incremental_reexec_matches_full_forward() {
        let mut m = ResNetConfig::resnet20_micro().build_seeded(13).unwrap();
        let input = Tensor::from_fn([1, 3, 16, 16], |i| ((i * 31 % 97) as f32) * 0.01);
        let cache = m.forward_cached(&input).unwrap();
        // Corrupt a weight in layer 10 and compare incremental vs full.
        let layers = m.weight_layers();
        let target = &layers[10];
        let node = m.node_of_param(target.param).unwrap();
        m.store_mut().get_mut(target.param).unwrap().tensor.as_mut_slice()[3] = 2.5;
        let incremental = m.forward_from(node, &cache).unwrap();
        let full = m.forward(&input).unwrap();
        assert!(incremental.max_abs_diff(&full).unwrap() < 1e-5);
    }
}
