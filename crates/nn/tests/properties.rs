//! Property-based tests of model graphs and incremental re-execution.

use proptest::prelude::*;

use sfi_nn::resnet::ResNetConfig;
use sfi_nn::Model;
use sfi_tensor::Tensor;

fn tiny_model(seed: u64) -> Model {
    ResNetConfig { base_width: 2, blocks_per_stage: 1, classes: 10, input_size: 8 }
        .build_seeded(seed)
        .expect("valid config")
}

fn image(seed: u64) -> Tensor {
    Tensor::from_fn([1, 3, 8, 8], |i| {
        let x = (i as u64).wrapping_mul(seed.wrapping_add(1)).wrapping_mul(2654435761);
        ((x % 1000) as f32 / 500.0) - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental re-execution from ANY weight layer equals a full forward
    /// pass after corrupting a weight in that layer. This is the soundness
    /// property the campaign runner relies on.
    #[test]
    fn forward_from_equals_forward(
        layer in 0usize..8,
        weight_pick in 0usize..10_000,
        delta in -8.0f32..8.0,
        img_seed in 0u64..50,
    ) {
        let mut m = tiny_model(4);
        let input = image(img_seed);
        let cache = m.forward_cached(&input).unwrap();
        let info = m.weight_layers()[layer].clone();
        let node = m.node_of_param(info.param).unwrap();
        let idx = weight_pick % info.len;
        m.store_mut().get_mut(info.param).unwrap().tensor.as_mut_slice()[idx] += delta;
        let incremental = m.forward_from(node, &cache).unwrap();
        let full = m.forward(&input).unwrap();
        prop_assert!(
            incremental.max_abs_diff(&full).unwrap() <= 1e-4,
            "layer {layer} node {node}"
        );
    }

    /// Inference is deterministic and batch-consistent: evaluating an image
    /// alone or inside a batch yields the same logits.
    #[test]
    fn batch_consistency(img_seed in 0u64..50) {
        let m = tiny_model(4);
        let single = image(img_seed);
        let other = image(img_seed + 1);
        let mut batch_data = single.as_slice().to_vec();
        batch_data.extend_from_slice(other.as_slice());
        let batch = Tensor::from_vec([2, 3, 8, 8], batch_data).unwrap();
        let single_out = m.forward(&single).unwrap();
        let batch_out = m.forward(&batch).unwrap();
        for c in 0..10 {
            let a = single_out.get([0, c]).unwrap();
            let b = batch_out.get([0, c]).unwrap();
            prop_assert!((a - b).abs() < 1e-4, "class {c}: {a} vs {b}");
        }
    }

    /// Model cloning yields an independent parameter store: mutating the
    /// clone never affects the original's outputs.
    #[test]
    fn clone_isolation(layer in 0usize..8, img_seed in 0u64..20) {
        let m = tiny_model(4);
        let input = image(img_seed);
        let golden = m.forward(&input).unwrap();
        let mut clone = m.clone();
        let info = clone.weight_layers()[layer].clone();
        for v in clone.store_mut().get_mut(info.param).unwrap().tensor.as_mut_slice() {
            *v = 99.0;
        }
        let after = m.forward(&input).unwrap();
        prop_assert_eq!(golden, after);
    }

    /// Different seeds produce different weights (no RNG aliasing), same
    /// seeds identical ones.
    #[test]
    fn seeding_behaviour(seed in 0u64..1_000) {
        let a = tiny_model(seed);
        let b = tiny_model(seed);
        prop_assert_eq!(a.store(), b.store());
        let c = tiny_model(seed + 1);
        prop_assert!(a.store() != c.store());
    }
}

/// Width scaling preserves the 20-layer structure across a range of widths.
#[test]
fn resnet20_structure_stable_across_widths() {
    for width in [2usize, 4, 8, 16] {
        let m = ResNetConfig::resnet20().with_width(width).build().unwrap();
        let layers = m.weight_layers();
        assert_eq!(layers.len(), 20, "width {width}");
        assert_eq!(layers[0].len, 3 * width * 9);
        assert_eq!(layers[19].len, 4 * width * 10);
        // Stage structure: 6 convs at w, then transitions.
        for (l, layer) in layers.iter().enumerate().take(7).skip(1) {
            assert_eq!(layer.len, width * width * 9, "width {width} layer {l}");
        }
    }
}
