//! Assessing a *custom* CNN with the same methodology: build an arbitrary
//! model graph through the public `sfi-nn` API, then run a data-aware SFI
//! on it. Demonstrates that the planners are topology-agnostic — anything
//! exposing weight layers gets the full treatment.
//!
//! Run with: `cargo run --release --example custom_network`

use sfi::nn::{init, Model, Node, NodeOp, ParamKind, ParameterStore};
use sfi::prelude::*;
use sfi::tensor::ops::Conv2dCfg;

/// A small LeNet-style network: two conv/pool stages and two linear layers.
fn build_lenet(seed: u64) -> Result<Model, Box<dyn std::error::Error>> {
    let mut store = ParameterStore::new();
    let w0 =
        store.push("conv1.weight", ParamKind::Weight { layer: 0 }, Tensor::zeros([6, 1, 5, 5]));
    let w1 =
        store.push("conv2.weight", ParamKind::Weight { layer: 1 }, Tensor::zeros([16, 6, 5, 5]));
    let w2 =
        store.push("fc1.weight", ParamKind::Weight { layer: 2 }, Tensor::zeros([32, 16 * 7 * 7]));
    let b2 = store.push("fc1.bias", ParamKind::Bias, Tensor::zeros([32]));
    let w3 = store.push("fc2.weight", ParamKind::Weight { layer: 3 }, Tensor::zeros([10, 32]));
    let b3 = store.push("fc2.bias", ParamKind::Bias, Tensor::zeros([10]));

    let nodes = vec![
        Node { op: NodeOp::Input, inputs: vec![] },
        Node::unary(NodeOp::Conv { weight: w0, bias: None, cfg: Conv2dCfg::same(1) }, 0),
        Node::unary(NodeOp::Relu, 1),
        Node::unary(NodeOp::AvgPool { kernel: 2 }, 2),
        Node::unary(NodeOp::Conv { weight: w1, bias: None, cfg: Conv2dCfg::same(1) }, 3),
        Node::unary(NodeOp::Relu, 4),
        Node::unary(NodeOp::AvgPool { kernel: 2 }, 5),
        // Linear flattens rank-4 inputs automatically.
        Node::unary(NodeOp::Linear { weight: w2, bias: Some(b2) }, 6),
        Node::unary(NodeOp::Relu, 7),
        Node::unary(NodeOp::Linear { weight: w3, bias: Some(b3) }, 8),
    ];
    let mut model = Model::new("lenet", nodes, store, vec![1, 28, 28])?;
    init::initialize_seeded(model.store_mut(), seed);
    Ok(model)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = build_lenet(3)?;
    println!("custom model: {} with {} weight layers", model.name(), model.weight_layers().len());
    for l in model.weight_layers() {
        println!("  layer {}: {} ({} weights)", l.layer, l.name, l.len);
    }

    // A grayscale 28x28 evaluation set.
    let data = {
        let cfg = SynthCifarConfig {
            channels: 1,
            size: 28,
            classes: 10,
            samples: 6,
            seed: 5,
            noise: 0.2,
        };
        cfg.generate()
    };
    let golden = GoldenReference::build(&model, &data)?;

    // Data-aware SFI, exactly as for the paper's networks.
    let space = FaultSpace::stuck_at(&model);
    let analysis = WeightBitAnalysis::from_weights(model.store().all_weights())?;
    let spec = SampleSpec { error_margin: 0.05, ..SampleSpec::paper_default() };
    let plan = plan_data_aware(&space, &analysis, &spec, &DataAwareConfig::paper_default())?;
    println!(
        "\ndata-aware plan: {} of {} faults ({:.2}%)",
        plan.total_sample(),
        plan.total_population(),
        plan.injected_percent()
    );

    let outcome = execute_plan(&model, &data, &golden, &plan, 1, &CampaignConfig::default())?;
    println!("injected {} faults in {:.2?}\n", outcome.injections(), outcome.elapsed());
    for l in 0..space.layers() {
        if let Some(est) = outcome.layer_estimate(l, Confidence::C99) {
            println!(
                "layer {l}: {:5.2}% ± {:4.2}% critical",
                est.proportion * 100.0,
                est.error_margin * 100.0
            );
        }
    }
    Ok(())
}
