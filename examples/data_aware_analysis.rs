//! Data-aware analysis on the *full-size* paper networks: per-bit 0/1
//! frequencies (paper Fig. 3), the derived success probabilities `p(i)`
//! (paper Fig. 4), and the resulting sample-size reduction (paper Table I
//! data-aware column). Pure analysis — no fault is injected, so the
//! full-size ResNet-20 and MobileNetV2 are cheap to process.
//!
//! Run with: `cargo run --release --example data_aware_analysis`

use sfi::core::report::{ascii_bar, group_digits};
use sfi::prelude::*;

fn analyse(name: &str, model: &Model) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {name}: {} weights ==", group_digits(model.store().total_weights() as u64));
    let analysis = WeightBitAnalysis::from_weights(model.store().all_weights())?;

    // Fig. 3: how often each bit is 1 across the weight distribution.
    println!("\nbit  f1 fraction   (Fig. 3)");
    for bit in (0..32).rev() {
        let f1 = analysis.fraction_one(bit);
        println!("{bit:3}  {f1:10.4}   {}", ascii_bar(f1, 1.0, 40));
    }

    // Fig. 4: the data-aware p(i) derived from Eq. 4-5.
    let p = data_aware_p(&analysis, &DataAwareConfig::paper_default())?;
    println!("\nbit  p(i)         (Fig. 4)");
    for bit in (0..32).rev() {
        println!("{bit:3}  {:10.4}   {}", p[bit], ascii_bar(p[bit], 0.5, 40));
    }

    // Table I/II flavour: how much the data-aware plan saves.
    let space = FaultSpace::stuck_at(model);
    let spec = SampleSpec::paper_default();
    let unaware = plan_data_unaware(&space, &spec);
    let aware = plan_data_aware(&space, &analysis, &spec, &DataAwareConfig::paper_default())?;
    println!(
        "\ndata-unaware plan: {:>12} faults ({:.2}% of population)",
        group_digits(unaware.total_sample()),
        unaware.injected_percent()
    );
    println!(
        "data-aware plan:   {:>12} faults ({:.2}% of population)",
        group_digits(aware.total_sample()),
        aware.injected_percent()
    );
    println!("reduction: {:.1}x\n", unaware.total_sample() as f64 / aware.total_sample() as f64);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let resnet = ResNetConfig::resnet20().build_seeded(1)?;
    analyse("ResNet-20", &resnet)?;
    let mobilenet = MobileNetV2Config::cifar().build_seeded(1)?;
    analyse("MobileNetV2", &mobilenet)?;
    Ok(())
}
