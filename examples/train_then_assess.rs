//! The full paper workflow on *trained* weights: train a CNN on the
//! synthetic task, confirm the accuracy gain, then run the data-aware SFI
//! methodology against the trained golden weights.
//!
//! Run with: `cargo run --release --example train_then_assess`

use sfi::nn::train::{fit, SgdConfig, TrainConfig};
use sfi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A separable synthetic task: per-class prototypes with mild noise.
    let data = SynthCifarConfig::new()
        .with_size(16)
        .with_samples(60)
        .with_noise(0.3)
        .with_seed(3)
        .generate();
    let (images, labels): (Vec<_>, Vec<_>) =
        data.iter().map(|(img, label)| (img.clone(), label)).unzip();

    let mut model =
        ResNetConfig { base_width: 4, blocks_per_stage: 1, classes: 10, input_size: 16 }
            .build_seeded(42)?;
    println!("before training: {}", evaluate(&model, &data)?);

    let cfg = TrainConfig {
        epochs: 30,
        batch_size: 10,
        seed: 9,
        sgd: SgdConfig { lr: 0.01, momentum: 0.9, weight_decay: 1e-4 },
    };
    let report = fit(&mut model, &images, &labels, &cfg)?;
    println!(
        "after {} epochs: {}  (loss {:.3} -> {:.3})",
        cfg.epochs,
        evaluate(&model, &data)?,
        report.epoch_losses[0],
        report.final_loss()
    );

    // The paper's pipeline, now on trained golden weights: the data-aware
    // prior is derived from the distribution SGD actually produced.
    let eval = data.truncated(8);
    let golden = GoldenReference::build(&model, &eval)?;
    let space = FaultSpace::stuck_at(&model);
    let analysis = WeightBitAnalysis::from_weights(model.store().all_weights())?;
    let spec = SampleSpec { error_margin: 0.02, ..SampleSpec::paper_default() };
    let plan = plan_data_aware(&space, &analysis, &spec, &DataAwareConfig::paper_default())?;
    println!(
        "\ndata-aware plan on trained weights: {} of {} faults ({:.2}%)",
        plan.total_sample(),
        plan.total_population(),
        plan.injected_percent()
    );
    let outcome = execute_plan(&model, &eval, &golden, &plan, 7, &CampaignConfig::default())?;
    let est = outcome.network_estimate(Confidence::C99)?;
    println!(
        "trained network criticality: {:.3}% ± {:.3}% ({} injections in {:.2?})",
        est.proportion * 100.0,
        est.error_margin * 100.0,
        outcome.injections(),
        outcome.elapsed()
    );
    println!("\nmost critical bits of the trained weight distribution:");
    let du_plan = plan_data_unaware(&space, &SampleSpec { error_margin: 0.05, ..spec });
    let du = execute_plan(&model, &eval, &golden, &du_plan, 7, &CampaignConfig::default())?;
    for v in bit_ranking(&du, Confidence::C99).iter().take(5) {
        println!(
            "  bit {:2}: {:6.2}% ± {:.2}%",
            v.bit,
            v.estimate.proportion * 100.0,
            v.estimate.error_margin * 100.0
        );
    }
    Ok(())
}
