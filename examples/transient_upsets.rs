//! Transient activation upsets: the complementary fault model to the
//! paper's permanent weight faults, on the same statistical machinery.
//!
//! Run with: `cargo run --release --example transient_upsets`

use rand::rngs::StdRng;
use rand::SeedableRng;

use sfi::core::report::{group_digits, TextTable};
use sfi::faultsim::activation::{run_activation_campaign, ActivationSpace};
use sfi::prelude::*;
use sfi::stats::sampling::sample_without_replacement;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ResNetConfig { base_width: 2, blocks_per_stage: 1, classes: 10, input_size: 16 }
        .build_seeded(42)?;
    let data = SynthCifarConfig::new().with_size(16).with_samples(4).generate();
    let golden = GoldenReference::build(&model, &data)?;

    // The per-inference upset population: node x element x bit x image.
    let space = ActivationSpace::build(&model, &data)?;
    println!(
        "transient upset population: {} (across {} nodes, {} images)",
        group_digits(space.total()),
        space.nodes(),
        space.images()
    );

    // Sample the whole space at e = 1% with Eq. 1, exactly as for weights.
    let spec = SampleSpec::paper_default();
    let n = sample_size(space.total(), &spec);
    let mut rng = StdRng::seed_from_u64(7);
    let indices = sample_without_replacement(space.total(), n, &mut rng)?;
    let faults = space.faults_at(&indices)?;
    println!("injecting {} sampled upsets...\n", group_digits(n));
    let result = run_activation_campaign(&model, &data, &golden, &faults)?;

    let stratum = StratumResult {
        population: space.total(),
        sample: result.critical.len() as u64,
        successes: result.critical_count(),
    };
    println!(
        "transient critical rate: {:.3}% ± {:.3}% (99% confidence)",
        stratum.proportion() * 100.0,
        stratum.error_margin(Confidence::C99) * 100.0
    );

    // Per-node breakdown over the sample.
    let mut per_node: std::collections::BTreeMap<usize, (u64, u64)> = Default::default();
    for (fault, &critical) in faults.iter().zip(&result.critical) {
        let e = per_node.entry(fault.site.node).or_default();
        e.0 += 1;
        e.1 += u64::from(critical);
    }
    let mut table = TextTable::new(vec!["node".into(), "sampled".into(), "critical %".into()]);
    for (node, (sampled, critical)) in per_node.iter().filter(|(_, (s, _))| *s >= 50) {
        table.add_row(vec![
            node.to_string(),
            sampled.to_string(),
            format!("{:.2}", *critical as f64 / *sampled as f64 * 100.0),
        ]);
    }
    println!("\nper-node criticality (nodes with >= 50 sampled upsets):");
    println!("{}", table.render());
    println!("transient upsets strike one inference only, so their critical rates sit");
    println!("well below the permanent weight faults of the paper's campaigns — but");
    println!("the same exponent-bit dominance shows through.");
    Ok(())
}
