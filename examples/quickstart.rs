//! Quickstart: plan, execute, and read a layer-wise statistical fault
//! injection on a reduced-width ResNet-20.
//!
//! Run with: `cargo run --release --example quickstart`

use sfi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-width ResNet-20 (same 20-layer topology as the paper's
    // case study, scaled so the demo finishes in seconds) and a seeded
    // synthetic evaluation set.
    let model = ResNetConfig::resnet20_micro().build_seeded(42)?;
    let data = SynthCifarConfig::new().with_size(16).with_samples(8).generate();
    let golden = GoldenReference::build(&model, &data)?;
    println!("model: {} ({} weights)", model.name(), model.store().total_weights());
    println!("accuracy vs synthetic labels: {}", evaluate(&model, &data)?);

    // Plan: one Eq.-1 sample per weight layer, 99% confidence. The demo
    // uses e = 5% so the whole campaign is ~10k injections; the paper's
    // setting is e = 1%.
    let space = FaultSpace::stuck_at(&model);
    let spec = SampleSpec { error_margin: 0.05, ..SampleSpec::paper_default() };
    let plan = plan_layer_wise(&space, &spec);
    println!(
        "\nlayer-wise plan: {} faults out of {} ({:.2}% of the population)",
        plan.total_sample(),
        plan.total_population(),
        plan.injected_percent()
    );

    // Execute: every sampled fault is injected, inference re-runs from the
    // faulted layer (incremental re-execution), and the fault is classified
    // Critical when any image's top-1 prediction changes.
    let outcome = execute_plan(&model, &data, &golden, &plan, 7, &CampaignConfig::default())?;
    println!(
        "executed {} injections / {} inferences in {:.2?}\n",
        outcome.injections(),
        outcome.inferences(),
        outcome.elapsed()
    );

    println!("per-layer critical-fault rate (± margin, 99% confidence):");
    for l in 0..space.layers() {
        if let Some(est) = outcome.layer_estimate(l, Confidence::C99) {
            println!(
                "  layer {l:2}: {:6.2}% ± {:5.2}%  (n = {})",
                est.proportion * 100.0,
                est.error_margin * 100.0,
                est.sample
            );
        }
    }
    let net = outcome.network_estimate(Confidence::C99)?;
    println!(
        "\nnetwork: {:.2}% ± {:.2}% critical",
        net.proportion * 100.0,
        net.error_margin * 100.0
    );
    Ok(())
}
