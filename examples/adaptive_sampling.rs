//! Adaptive (sequential) sampling vs the paper's fixed Eq.-1 plans: stop
//! injecting as soon as the observed estimate is tight enough.
//!
//! Run with: `cargo run --release --example adaptive_sampling`

use sfi::core::report::{group_digits, TextTable};
use sfi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ResNetConfig { base_width: 2, blocks_per_stage: 1, classes: 10, input_size: 16 }
        .build_seeded(42)?;
    let data = SynthCifarConfig::new().with_size(16).with_samples(4).generate();
    let golden = GoldenReference::build(&model, &data)?;
    let space = FaultSpace::stuck_at(&model);
    let target = 0.02;

    println!("fixed Eq.-1 sample (worst case p = 0.5) vs adaptive Wilson stopping");
    println!("target margin: ±{:.1}% at 99% confidence\n", target * 100.0);
    let mut table = TextTable::new(vec![
        "layer".into(),
        "population".into(),
        "fixed n".into(),
        "adaptive n".into(),
        "saving".into(),
        "estimate %".into(),
        "achieved ±%".into(),
    ]);
    let spec = SampleSpec { error_margin: target, ..SampleSpec::paper_default() };
    let cfg = CampaignConfig::default();
    for layer in 0..space.layers() {
        let subpop = space.layer_subpopulation(layer)?;
        let fixed = sample_size(subpop.size(), &spec);
        let adaptive =
            run_adaptive(&model, &data, &golden, &subpop, &AdaptiveConfig::new(target), 11, &cfg)?;
        table.add_row(vec![
            format!("L{layer}"),
            group_digits(subpop.size()),
            group_digits(fixed),
            group_digits(adaptive.result.sample),
            format!("{:.1}x", fixed as f64 / adaptive.result.sample.max(1) as f64),
            format!("{:.2}", adaptive.result.proportion() * 100.0),
            format!("{:.2}", adaptive.achieved_margin(Confidence::C99) * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!("critical rates sit far below the worst-case p = 0.5, so sequential");
    println!("stopping reaches the same precision with a fraction of the injections");
    println!("while every intermediate prefix remains a valid simple random sample.");
    Ok(())
}
