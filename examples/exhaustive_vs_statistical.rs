//! The paper's validation experiment in miniature (Table III): run an
//! exhaustive campaign on a reduced-scale ResNet-20, then all four
//! statistical SFI schemes, and compare cost vs accuracy.
//!
//! Run with: `cargo run --release --example exhaustive_vs_statistical`

use sfi::core::report::{group_digits, percent, TextTable};
use sfi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ResNet-8 at width 2 keeps the exhaustive campaign around a minute.
    let model = ResNetConfig { base_width: 2, blocks_per_stage: 1, classes: 10, input_size: 16 }
        .build_seeded(42)?;
    let data = SynthCifarConfig::new().with_size(16).with_samples(4).generate();
    let golden = GoldenReference::build(&model, &data)?;
    let space = FaultSpace::stuck_at(&model);
    let cfg = CampaignConfig::default();

    println!("exhaustive campaign over {} faults...", group_digits(space.total()));
    let truth = ExhaustiveTruth::build(&model, &data, &golden, &cfg)?;
    println!(
        "exhaustive: {:.3}% of faults are critical ({} injections)\n",
        truth.network_rate() * 100.0,
        group_digits(truth.injections())
    );

    // All four schemes, planned at e = 2.5% for demo speed (paper: 1%).
    let spec = SampleSpec { error_margin: 0.025, ..SampleSpec::paper_default() };
    let analysis = WeightBitAnalysis::from_weights(model.store().all_weights())?;
    let plans = vec![
        plan_network_wise(&space, &spec),
        plan_layer_wise(&space, &spec),
        plan_data_unaware(&space, &spec),
        plan_data_aware(&space, &analysis, &spec, &DataAwareConfig::paper_default())?,
    ];

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "faults (n)".into(),
        "injected %".into(),
        "avg margin".into(),
        "coverage".into(),
    ]);
    for plan in plans {
        let outcome = execute_plan(&model, &data, &golden, &plan, 11, &cfg)?;
        let validation = validate_against_exhaustive(&outcome, &truth, Confidence::C99);
        table.add_row(vec![
            plan.scheme().to_string(),
            group_digits(validation.injections),
            format!("{:.2}", validation.injected_percent),
            percent(validation.avg_error_margin, 3),
            validation
                .coverage_non_degenerate()
                .map(|c| percent(c, 0))
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    println!("{}", table.render());
    println!("(coverage = share of non-degenerate layers whose exhaustive rate");
    println!(" falls inside the statistical error margin, as in paper Figs. 5-7)");
    Ok(())
}
