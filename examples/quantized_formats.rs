//! The paper's future-work direction, implemented: data-aware SFI over
//! reduced-precision weight memories (FP16, bfloat16, int8 fixed point),
//! comparing per-format criticality and campaign cost.
//!
//! Run with: `cargo run --release --example quantized_formats`

use sfi::core::report::{group_digits, TextTable};
use sfi::prelude::*;

fn assess(format: Format) -> Result<Vec<String>, Box<dyn std::error::Error>> {
    // Quantise the weights onto the format's grid; inference stays f32, as
    // in dequantise-on-load weight memories.
    let mut model =
        ResNetConfig { base_width: 2, blocks_per_stage: 1, classes: 10, input_size: 16 }
            .build_seeded(42)?;
    quantize_weights(model.store_mut(), format);
    let data = SynthCifarConfig::new().with_size(16).with_samples(4).generate();
    let golden = GoldenReference::build(&model, &data)?;

    // The format's own fault space: bits() faults per weight per polarity.
    let space = FaultSpace::stuck_at(&model).with_bits(u64::from(format.bits()));
    let spec = SampleSpec { error_margin: 0.02, ..SampleSpec::paper_default() };

    // Data-aware p(i) over the format's bit positions (Eq. 4-5).
    let analysis = FormatBitAnalysis::from_weights(format, model.store().all_weights())?;
    let p = data_aware_p_format(&analysis, &DataAwareConfig::paper_default())?;
    let plan = plan_data_aware_with_p(&space, &p, &spec)?;

    let corruption = FormatCorruption::new(format);
    let outcome = execute_plan_in_space(
        &model,
        &data,
        &golden,
        &plan,
        &space,
        7,
        &CampaignConfig::default(),
        &corruption,
    )?;
    let est = outcome.network_estimate(Confidence::C99)?;
    Ok(vec![
        format.to_string(),
        format.bits().to_string(),
        group_digits(space.total()),
        group_digits(outcome.injections()),
        format!("{:.2}", plan.injected_percent()),
        format!("{:.3} ± {:.3}", est.proportion * 100.0, est.error_margin * 100.0),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("data-aware SFI across weight representations (reduced ResNet, 4 images)\n");
    let mut table = TextTable::new(vec![
        "format".into(),
        "bits".into(),
        "fault space".into(),
        "injected".into(),
        "inj %".into(),
        "critical % (99% CI)".into(),
    ]);
    for format in [Format::F16, Format::Bf16, Format::fixed(8, 6)?, Format::fixed(16, 12)?] {
        table.add_row(assess(format)?);
    }
    println!("{}", table.render());
    println!("reading: float formats concentrate criticality in the exponent MSB,");
    println!("fixed point spreads it across the high magnitude bits — and the");
    println!("data-aware planner adapts p(i) to each encoding automatically.");
    Ok(())
}
