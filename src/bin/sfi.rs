//! The `sfi` command-line tool. See `sfi help` or [`sfi::cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match sfi::cli::parse(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", sfi::cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = sfi::cli::run(&opts, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
