//! # sfi — Statistical Fault Injection for CNN Reliability
//!
//! A from-scratch Rust reproduction of *"Assessing Convolutional Neural
//! Networks Reliability through Statistical Fault Injections"* (Ruospo et
//! al., DATE 2023, DOI 10.23919/DATE56975.2023.10136998).
//!
//! This facade crate re-exports the workspace's layers:
//!
//! | crate | re-export | role |
//! |---|---|---|
//! | `sfi-tensor` | [`tensor`] | f32 NCHW tensors + CNN operators |
//! | `sfi-nn` | [`nn`] | model graphs, ResNet-20 / MobileNetV2 |
//! | `sfi-dataset` | [`dataset`] | seeded synthetic CIFAR-10-like data |
//! | `sfi-faultsim` | [`faultsim`] | fault models, populations, campaigns |
//! | `sfi-stats` | [`stats`] | Eq. 1 sample sizes, margins, Eq. 4–5 `p(i)` |
//! | `sfi-core` | [`core`] | the four SFI planners + validation |
//!
//! # Quickstart
//!
//! ```
//! use sfi::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Build a model and an evaluation set.
//! let model = ResNetConfig::resnet20_micro().build_seeded(42)?;
//! let data = SynthCifarConfig::new().with_size(16).with_samples(4).generate();
//! let golden = GoldenReference::build(&model, &data)?;
//!
//! // 2. Plan a layer-wise statistical campaign (paper Eq. 1 per layer).
//! let space = FaultSpace::stuck_at(&model);
//! let spec = SampleSpec { error_margin: 0.1, ..SampleSpec::paper_default() };
//! let plan = plan_layer_wise(&space, &spec);
//!
//! // 3. Execute and read the per-layer criticality estimates.
//! let outcome = execute_plan(&model, &data, &golden, &plan, 7, &CampaignConfig::default())?;
//! let est = outcome.layer_estimate(0, Confidence::C99).unwrap();
//! println!("layer 0: {:.2}% ± {:.2}%", est.proportion * 100.0, est.error_margin * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sfi_core as core;
pub use sfi_dataset as dataset;
pub use sfi_faultsim as faultsim;
pub use sfi_nn as nn;
pub use sfi_obs as obs;
pub use sfi_repr as repr;
pub use sfi_stats as stats;
pub use sfi_tensor as tensor;

pub mod cli;

/// The names most programs need, in one import.
pub mod prelude {
    pub use sfi_core::adaptive::{run_adaptive, AdaptiveConfig, AdaptiveOutcome};
    pub use sfi_core::bits::{bit_ranking, layer_bit_matrix, BitVulnerability};
    pub use sfi_core::checkpoint::{
        execute_plan_checkpointed, execute_plan_checkpointed_any, plan_fingerprint,
        plan_fingerprint_any, CampaignRun, CheckpointConfig, ResumeStats,
    };
    pub use sfi_core::execute::{
        execute_plan, execute_plan_any, execute_plan_in_space, CampaignSpace, SfiOutcome,
    };
    pub use sfi_core::exhaustive::ExhaustiveTruth;
    pub use sfi_core::plan::{
        activation_bit_analysis, plan_accumulated, plan_data_aware, plan_data_aware_with_p,
        plan_data_unaware, plan_layer_wise, plan_network_wise, plan_neyman, plan_transient,
        SchemeKind, SfiPlan,
    };
    pub use sfi_core::validation::validate_against_exhaustive;
    pub use sfi_core::SfiError;
    pub use sfi_dataset::{evaluate, Dataset, SynthCifarConfig};
    pub use sfi_faultsim::activation::{ActivationFault, ActivationSpace};
    pub use sfi_faultsim::campaign::{run_campaign, CampaignConfig, Criterion, FaultClass};
    pub use sfi_faultsim::executor::CancelToken;
    pub use sfi_faultsim::fault::{Fault, FaultModel, FaultSite};
    pub use sfi_faultsim::golden::GoldenReference;
    pub use sfi_faultsim::journal::{FaultId, JournalRecord, JournalRecovery, JournalWriter};
    pub use sfi_faultsim::multi::{AccumulatedFault, CampaignFault, FaultTarget};
    pub use sfi_faultsim::population::FaultSpace;
    pub use sfi_nn::mobilenet::MobileNetV2Config;
    pub use sfi_nn::resnet::ResNetConfig;
    pub use sfi_nn::vgg::VggConfig;
    pub use sfi_nn::Model;
    pub use sfi_repr::{
        data_aware_p_format, quantize_weights, Format, FormatBitAnalysis, FormatCorruption,
    };
    pub use sfi_stats::bit_analysis::{data_aware_p, DataAwareConfig, WeightBitAnalysis};
    pub use sfi_stats::confidence::Confidence;
    pub use sfi_stats::estimate::{stratified_estimate, StratumResult};
    pub use sfi_stats::sample_size::{sample_size, SampleSpec};
    pub use sfi_tensor::{Shape, Tensor};
}
