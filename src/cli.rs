//! The `sfi` command-line interface.
//!
//! A thin, dependency-free argument parser plus the drivers behind the
//! `sfi` binary's subcommands. Parsing is separated from execution so the
//! grammar is unit-testable; see [`parse`] and [`run`].
//!
//! ```text
//! sfi plan    --model resnet20 --scheme data-aware [--error 0.01] [--seed 1]
//! sfi run     --model resnet20-micro --scheme layer-wise [--images 4] [--error 0.05]
//! sfi run     --model resnet20-micro --trace-out trace.jsonl [--trace-level events]
//! sfi analyze --model mobilenetv2 [--seed 1]
//! sfi bits    --model resnet20-micro [--images 4] [--error 0.1]
//! sfi harden  --model resnet20-micro [--budget-frac 0.5] [--images 4]
//! sfi trace report trace.jsonl
//! ```

use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

use sfi_core::bits::bit_ranking;
use sfi_core::checkpoint::{execute_plan_checkpointed_traced_any, CampaignRun, CheckpointConfig};
use sfi_core::execute::{
    execute_plan, execute_plan_traced_any, fault_model_label, CampaignSpace, PlanProgress,
};
use sfi_core::hardening::{plan_protection, HardeningConfig};
use sfi_core::plan::{
    activation_bit_analysis, plan_accumulated, plan_data_aware, plan_data_unaware, plan_layer_wise,
    plan_network_wise, plan_transient, SchemeKind, SfiPlan,
};
use sfi_core::report::{
    group_digits, percent, phase_report, telemetry_report, telemetry_report_resumed, PhaseLine,
    TextTable,
};
use sfi_dataset::SynthCifarConfig;
use sfi_faultsim::activation::ActivationSpace;
use sfi_faultsim::campaign::{CampaignConfig, Ieee754Corruption};
use sfi_faultsim::golden::GoldenReference;
use sfi_faultsim::multi::FaultTarget;
use sfi_faultsim::population::FaultSpace;
use sfi_nn::mobilenet::MobileNetV2Config;
use sfi_nn::resnet::ResNetConfig;
use sfi_nn::Model;
use sfi_obs::{summary, Event, Probe, TraceLevel};
use sfi_stats::bit_analysis::{data_aware_p, DataAwareConfig, WeightBitAnalysis};
use sfi_stats::confidence::Confidence;
use sfi_stats::sample_size::SampleSpec;

/// Errors produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCliError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseCliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseCliError {}

fn err(message: impl Into<String>) -> ParseCliError {
    ParseCliError { message: message.into() }
}

/// The subcommand to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Print a sampling plan (no simulation).
    Plan,
    /// Execute a statistical campaign and print estimates.
    Run,
    /// Print the weight-distribution bit analysis (Figs. 3/4).
    Analyze,
    /// Run a data-unaware campaign and print the bit-criticality ranking.
    Bits,
    /// Run a layer-wise campaign and print a selective-hardening plan.
    Harden,
    /// Summarize a JSONL trace written by `run --trace-out` (the trace
    /// path travels in [`CliOptions::trace_out`]).
    TraceReport,
    /// Print usage.
    Help,
}

/// Which network to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Full-size ResNet-20 (268,336 weights) — planning/analysis only.
    Resnet20,
    /// Reduced ResNet-20 (width 2, 16×16) for simulation-backed commands.
    Resnet20Micro,
    /// Full-size CIFAR MobileNetV2 (2,203,584 weights).
    MobileNetV2,
    /// Reduced MobileNetV2 for simulation-backed commands.
    MobileNetV2Micro,
    /// Full-size CIFAR VGG-11 (9 weight layers).
    Vgg11,
    /// Reduced VGG for simulation-backed commands.
    VggMicro,
}

impl ModelChoice {
    fn parse(s: &str) -> Result<Self, ParseCliError> {
        match s {
            "resnet20" => Ok(ModelChoice::Resnet20),
            "resnet20-micro" => Ok(ModelChoice::Resnet20Micro),
            "mobilenetv2" => Ok(ModelChoice::MobileNetV2),
            "mobilenetv2-micro" => Ok(ModelChoice::MobileNetV2Micro),
            "vgg11" => Ok(ModelChoice::Vgg11),
            "vgg-micro" => Ok(ModelChoice::VggMicro),
            other => Err(err(format!(
                "unknown model `{other}` (expected resnet20, resnet20-micro, mobilenetv2, \
                 mobilenetv2-micro, vgg11, vgg-micro)"
            ))),
        }
    }

    fn build(&self, seed: u64) -> Result<Model, sfi_nn::NnError> {
        match self {
            ModelChoice::Resnet20 => ResNetConfig::resnet20().build_seeded(seed),
            ModelChoice::Resnet20Micro => ResNetConfig::resnet20_micro().build_seeded(seed),
            ModelChoice::MobileNetV2 => MobileNetV2Config::cifar().build_seeded(seed),
            ModelChoice::MobileNetV2Micro => MobileNetV2Config::cifar_micro().build_seeded(seed),
            ModelChoice::Vgg11 => sfi_nn::vgg::VggConfig::vgg11().build_seeded(seed),
            ModelChoice::VggMicro => sfi_nn::vgg::VggConfig::vgg_micro().build_seeded(seed),
        }
    }

    fn input_size(&self) -> usize {
        match self {
            ModelChoice::Resnet20 | ModelChoice::MobileNetV2 | ModelChoice::Vgg11 => 32,
            ModelChoice::Resnet20Micro | ModelChoice::MobileNetV2Micro | ModelChoice::VggMicro => {
                16
            }
        }
    }
}

/// Which SFI scheme to plan or run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeChoice {
    /// One sample over the whole fault space.
    NetworkWise,
    /// One sample per weight layer.
    LayerWise,
    /// One sample per `(layer, bit)` at p = 0.5.
    DataUnaware,
    /// One sample per `(layer, bit)` at the data-derived p(i).
    DataAware,
}

impl SchemeChoice {
    fn parse(s: &str) -> Result<Self, ParseCliError> {
        match s {
            "network-wise" | "network" => Ok(SchemeChoice::NetworkWise),
            "layer-wise" | "layer" => Ok(SchemeChoice::LayerWise),
            "data-unaware" => Ok(SchemeChoice::DataUnaware),
            "data-aware" => Ok(SchemeChoice::DataAware),
            other => Err(err(format!(
                "unknown scheme `{other}` (expected network-wise, layer-wise, data-unaware, \
                 data-aware)"
            ))),
        }
    }
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Subcommand.
    pub command: Command,
    /// Target network.
    pub model: ModelChoice,
    /// Scheme (plan/run).
    pub scheme: SchemeChoice,
    /// Which tensors faults strike: permanent weight faults (the paper's
    /// baseline) or transient activation/input faults (plan/run).
    pub fault_model: FaultTarget,
    /// Number of simultaneous faults per injection (`run`). 1 replicates
    /// the paper's single-fault campaigns; k > 1 composes k distinct sites
    /// drawn from the union of the weight and activation populations.
    pub accumulate: u64,
    /// Error margin `e`.
    pub error_margin: f64,
    /// Evaluation images for simulation-backed commands.
    pub images: usize,
    /// Seed for weights, data, and sampling.
    pub seed: u64,
    /// Fraction of the full SEC-DED budget for `harden`.
    pub budget_frac: f64,
    /// Campaign worker threads for simulation-backed commands.
    pub workers: usize,
    /// Report live progress (stderr) and per-stratum telemetry for `run`.
    pub progress: bool,
    /// Checkpoint-journal directory for `run` (enables crash tolerance).
    pub checkpoint_dir: Option<String>,
    /// Resume from the journal in `checkpoint_dir` instead of starting
    /// fresh.
    pub resume: bool,
    /// Fsync the journal every this many classifications (`run`).
    pub checkpoint_every: u64,
    /// Precompute im2col lowerings of every conv layer's golden input
    /// (`run`). On by default; `--no-lowering-cache` disables it to trade
    /// speed for memory. Classifications are identical either way.
    pub lowering_cache: bool,
    /// Stop each faulty forward pass as soon as the activation wavefront
    /// is provably back to golden (`run`). On by default;
    /// `--no-early-exit` disables it. Classifications and inference counts
    /// are identical either way.
    pub early_exit: bool,
    /// Propagate faults as sparse deltas over the golden activations,
    /// recomputing only the dirty cone of each fault (`run`). On by
    /// default; `--no-delta` falls back to dense (or early-exit)
    /// re-execution. Classifications and inference counts are identical
    /// either way.
    pub delta: bool,
    /// Evaluate all eval images of a faulty suffix in one batched forward
    /// pass per node (`run`). On by default; `--no-batched` falls back to
    /// the per-image loop. Classifications and inference counts are
    /// identical either way.
    pub batched: bool,
    /// JSONL trace destination for `run` (enables tracing), or the trace
    /// to summarize for `trace report`.
    pub trace_out: Option<String>,
    /// Trace verbosity for `run`; defaults to `events` when `--trace-out`
    /// is given, `off` otherwise.
    pub trace_level: Option<TraceLevel>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            command: Command::Help,
            model: ModelChoice::Resnet20Micro,
            scheme: SchemeChoice::LayerWise,
            fault_model: FaultTarget::Weight,
            accumulate: 1,
            error_margin: 0.05,
            images: 4,
            seed: 42,
            budget_frac: 0.5,
            workers: 1,
            progress: false,
            checkpoint_dir: None,
            resume: false,
            checkpoint_every: 64,
            lowering_cache: true,
            early_exit: true,
            delta: true,
            batched: true,
            trace_out: None,
            trace_level: None,
        }
    }
}

/// Usage text printed by `sfi help` (and on parse errors).
pub const USAGE: &str = "\
sfi — statistical fault injection for CNN reliability (DATE 2023)

USAGE:
    sfi <COMMAND> [OPTIONS]

COMMANDS:
    plan      compute a sampling plan (no simulation; full-size models fine)
    run       execute a statistical campaign and print per-layer estimates
    analyze   golden weight bit analysis: f0/f1 and data-aware p(i)
    bits      bit-criticality ranking from a data-unaware campaign
    harden    selective SEC-DED protection plan from per-layer estimates
    trace     `trace report <file>`: summarize a JSONL trace from --trace-out
    help      print this message

OPTIONS:
    --model <resnet20|resnet20-micro|mobilenetv2|mobilenetv2-micro|vgg11|vgg-micro>
    --scheme <network-wise|layer-wise|data-unaware|data-aware>
    --fault-model <weight|activation|input>
                              what faults strike (default weight): permanent
                              weight faults, or transient faults in activation
                              tensors / the input image (plan/run)
    --accumulate <k>          inject k simultaneous faults per trial (run),
                              drawn without replacement from the union of the
                              weight and activation populations (default 1)
    --error <fraction>        planned error margin e (default 0.05; paper: 0.01)
    --images <n>              evaluation images for run/bits/harden (default 4)
    --seed <n>                master seed (default 42)
    --budget-frac <fraction>  share of the full ECC budget for harden (default 0.5)
    --workers <n>             campaign worker threads (default 1)
    --progress                live progress on stderr + per-stratum telemetry (run)
    --checkpoint-dir <dir>    journal every classification to <dir> (run); an
                              interrupted campaign can then be continued
    --resume                  continue from the journal in --checkpoint-dir
    --checkpoint-every <n>    fsync the journal every n classifications (default 64)
    --no-lowering-cache       skip precomputing im2col lowerings of golden conv
                              inputs (run); slower but lighter on memory
    --no-early-exit           always run faulty forward passes to the logits
                              instead of stopping once the activations are
                              provably golden again (run); slower, same results
    --no-delta                disable sparse delta propagation and re-execute
                              faulty suffixes densely (run); slower, same
                              results
    --no-batched              evaluate eval images one at a time instead of in
                              a single batched GEMM per node (run); slower,
                              same results
    --trace-out <file>        write a JSONL event trace of the campaign (run);
                              summarize it later with `sfi trace report <file>`
    --trace-level <off|spans|events>
                              trace verbosity (default: events when --trace-out
                              is given); spans skips per-fault events
";

/// Parses the argument list (without the program name).
///
/// # Errors
///
/// Returns a [`ParseCliError`] describing the first offending token.
pub fn parse(args: &[String]) -> Result<CliOptions, ParseCliError> {
    let mut opts = CliOptions::default();
    let mut iter = args.iter();
    let Some(cmd) = iter.next() else {
        return Ok(opts); // no args: help
    };
    opts.command = match cmd.as_str() {
        "plan" => Command::Plan,
        "run" => Command::Run,
        "analyze" => Command::Analyze,
        "bits" => Command::Bits,
        "harden" => Command::Harden,
        "trace" => {
            match iter.next().map(String::as_str) {
                Some("report") => {}
                Some(other) => {
                    return Err(err(format!(
                        "unknown trace subcommand `{other}` (expected report)"
                    )))
                }
                None => return Err(err("`trace` expects a subcommand (report)")),
            }
            let Some(path) = iter.next() else {
                return Err(err("`trace report` expects a trace file path"));
            };
            opts.trace_out = Some(path.clone());
            Command::TraceReport
        }
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(err(format!("unknown command `{other}`"))),
    };
    while let Some(flag) = iter.next() {
        let mut value =
            || iter.next().cloned().ok_or_else(|| err(format!("flag `{flag}` expects a value")));
        match flag.as_str() {
            "--model" => opts.model = ModelChoice::parse(&value()?)?,
            "--scheme" => opts.scheme = SchemeChoice::parse(&value()?)?,
            "--fault-model" => {
                let v = value()?;
                opts.fault_model = v.parse::<FaultTarget>().map_err(|_| {
                    err(format!("unknown fault model `{v}` (expected weight, activation, input)"))
                })?;
            }
            "--accumulate" => {
                let v = value()?;
                opts.accumulate = v
                    .parse::<u64>()
                    .map_err(|_| err(format!("`--accumulate {v}` is not an integer")))?;
                if opts.accumulate == 0 {
                    return Err(err("`--accumulate` must be at least 1"));
                }
            }
            "--error" => {
                let v = value()?;
                opts.error_margin =
                    v.parse::<f64>().map_err(|_| err(format!("`--error {v}` is not a number")))?;
                if !(opts.error_margin > 0.0 && opts.error_margin < 1.0) {
                    return Err(err("`--error` must lie in (0, 1)"));
                }
            }
            "--images" => {
                let v = value()?;
                opts.images = v
                    .parse::<usize>()
                    .map_err(|_| err(format!("`--images {v}` is not an integer")))?;
                if opts.images == 0 {
                    return Err(err("`--images` must be at least 1"));
                }
            }
            "--seed" => {
                let v = value()?;
                opts.seed =
                    v.parse::<u64>().map_err(|_| err(format!("`--seed {v}` is not an integer")))?;
            }
            "--budget-frac" => {
                let v = value()?;
                opts.budget_frac = v
                    .parse::<f64>()
                    .map_err(|_| err(format!("`--budget-frac {v}` is not a number")))?;
                if !(0.0..=1.0).contains(&opts.budget_frac) {
                    return Err(err("`--budget-frac` must lie in [0, 1]"));
                }
            }
            "--workers" => {
                let v = value()?;
                opts.workers = v
                    .parse::<usize>()
                    .map_err(|_| err(format!("`--workers {v}` is not an integer")))?;
                if opts.workers == 0 {
                    return Err(err("`--workers` must be at least 1"));
                }
            }
            "--progress" => opts.progress = true,
            "--checkpoint-dir" => {
                let v = value()?;
                if v.is_empty() {
                    return Err(err("`--checkpoint-dir` must not be empty"));
                }
                opts.checkpoint_dir = Some(v);
            }
            "--resume" => opts.resume = true,
            "--no-lowering-cache" => opts.lowering_cache = false,
            "--no-early-exit" => opts.early_exit = false,
            "--no-delta" => opts.delta = false,
            "--no-batched" => opts.batched = false,
            "--trace-out" => {
                let v = value()?;
                if v.is_empty() {
                    return Err(err("`--trace-out` must not be empty"));
                }
                opts.trace_out = Some(v);
            }
            "--trace-level" => {
                let v = value()?;
                opts.trace_level = Some(TraceLevel::parse(&v).ok_or_else(|| {
                    err(format!("`--trace-level {v}` is not one of off, spans, events"))
                })?);
            }
            "--checkpoint-every" => {
                let v = value()?;
                opts.checkpoint_every = v
                    .parse::<u64>()
                    .map_err(|_| err(format!("`--checkpoint-every {v}` is not an integer")))?;
                if opts.checkpoint_every == 0 {
                    return Err(err("`--checkpoint-every` must be at least 1"));
                }
            }
            other => return Err(err(format!("unknown flag `{other}`"))),
        }
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return Err(err("`--resume` requires `--checkpoint-dir`"));
    }
    if opts.trace_level.is_some_and(|l| l > TraceLevel::Off) && opts.trace_out.is_none() {
        return Err(err("`--trace-level` requires `--trace-out`"));
    }
    Ok(opts)
}

fn build_plan(
    opts: &CliOptions,
    model: &Model,
    space: &FaultSpace,
) -> Result<SfiPlan, Box<dyn std::error::Error>> {
    let spec = SampleSpec { error_margin: opts.error_margin, ..SampleSpec::paper_default() };
    Ok(match opts.scheme {
        SchemeChoice::NetworkWise => plan_network_wise(space, &spec),
        SchemeChoice::LayerWise => plan_layer_wise(space, &spec),
        SchemeChoice::DataUnaware => plan_data_unaware(space, &spec),
        SchemeChoice::DataAware => {
            let analysis = WeightBitAnalysis::from_weights(model.store().all_weights())?;
            plan_data_aware(space, &analysis, &spec, &DataAwareConfig::paper_default())?
        }
    })
}

/// Builds a transient-fault sampling plan over `acts`. Data-aware plans
/// re-derive the per-bit p(i) from the model's own golden activation
/// distribution (not its weights), so the statistics match what transient
/// faults actually strike.
fn build_transient_plan(
    opts: &CliOptions,
    model: &Model,
    data: &sfi_dataset::Dataset,
    golden: Option<&GoldenReference>,
    acts: &ActivationSpace,
) -> Result<SfiPlan, Box<dyn std::error::Error>> {
    let spec = SampleSpec { error_margin: opts.error_margin, ..SampleSpec::paper_default() };
    let scheme = match opts.scheme {
        SchemeChoice::NetworkWise => SchemeKind::NetworkWise,
        SchemeChoice::LayerWise => SchemeKind::LayerWise,
        SchemeChoice::DataUnaware => SchemeKind::DataUnaware,
        SchemeChoice::DataAware => SchemeKind::DataAware,
    };
    let p_storage;
    let p: Option<&[f64]> = if scheme == SchemeKind::DataAware {
        let golden_owned;
        let golden = match golden {
            Some(g) => g,
            None => {
                golden_owned = GoldenReference::build(model, data)?;
                &golden_owned
            }
        };
        let analysis = activation_bit_analysis(golden, acts)?;
        p_storage = data_aware_p(&analysis, &DataAwareConfig::paper_default())?;
        Some(&p_storage)
    } else {
        None
    };
    Ok(plan_transient(acts, opts.fault_model, scheme, p, &spec)?)
}

/// Executes a parsed command line, writing the report to `out`.
///
/// # Errors
///
/// Propagates model construction, planning, and campaign failures.
pub fn run(
    opts: &CliOptions,
    out: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    match opts.command {
        Command::Help => {
            write!(out, "{USAGE}")?;
            return Ok(());
        }
        Command::Plan => {
            let model = opts.model.build(opts.seed)?;
            let mut table = TextTable::new(vec!["group".into(), "population".into(), "n".into()]);
            let plan = if opts.accumulate > 1 {
                let data = SynthCifarConfig::new()
                    .with_size(opts.model.input_size())
                    .with_samples(opts.images)
                    .with_seed(opts.seed)
                    .generate();
                let space = FaultSpace::stuck_at(&model);
                let acts = ActivationSpace::build_for(&model, &data, FaultTarget::Activation)?;
                let spec =
                    SampleSpec { error_margin: opts.error_margin, ..SampleSpec::paper_default() };
                let plan = plan_accumulated(space.total() + acts.total(), opts.accumulate, &spec)?;
                table.add_row(vec![
                    "network".into(),
                    group_digits(plan.total_population()),
                    group_digits(plan.total_sample()),
                ]);
                plan
            } else if opts.fault_model != FaultTarget::Weight {
                let data = SynthCifarConfig::new()
                    .with_size(opts.model.input_size())
                    .with_samples(opts.images)
                    .with_seed(opts.seed)
                    .generate();
                let acts = ActivationSpace::build_for(&model, &data, opts.fault_model)?;
                let plan = build_transient_plan(opts, &model, &data, None, &acts)?;
                for group in 0..acts.nodes() {
                    let n: u64 = plan
                        .strata()
                        .iter()
                        .filter(|st| st.layer == Some(group))
                        .map(|st| st.sample)
                        .sum();
                    table.add_row(vec![
                        format!("N{group}"),
                        group_digits(acts.group_population(group)?),
                        group_digits(n),
                    ]);
                }
                plan
            } else {
                let space = FaultSpace::stuck_at(&model);
                let plan = build_plan(opts, &model, &space)?;
                for layer in 0..space.layers() {
                    table.add_row(vec![
                        format!("L{layer}"),
                        group_digits(space.layer_subpopulation(layer)?.size()),
                        group_digits(plan.restricted_to_layer(layer, &space).total_sample()),
                    ]);
                }
                plan
            };
            writeln!(
                out,
                "{} {} plan for {} (e = {}%, 99% confidence)\n",
                plan.scheme(),
                fault_model_label(&plan),
                model.name(),
                opts.error_margin * 100.0
            )?;
            write!(out, "{}", table.render())?;
            writeln!(
                out,
                "total: {} of {} faults ({:.2}%)",
                group_digits(plan.total_sample()),
                group_digits(plan.total_population()),
                plan.injected_percent()
            )?;
        }
        Command::Run => {
            // parse() already rejects these, but CliOptions can also be
            // built programmatically; fail with a typed error instead of
            // hanging a zero-worker pool or dividing by an empty eval set.
            if opts.workers == 0 {
                return Err(Box::new(err("`--workers` must be at least 1")));
            }
            if opts.images == 0 {
                return Err(Box::new(err(
                    "`--images` must be at least 1: an empty evaluation set cannot classify \
                     faults",
                )));
            }
            let trace_level = match (&opts.trace_out, opts.trace_level) {
                (Some(_), Some(level)) => level,
                (Some(_), None) => TraceLevel::Events,
                (None, _) => TraceLevel::Off,
            };
            let owned_probe;
            let probe: &Probe = if trace_level == TraceLevel::Off {
                Probe::disabled()
            } else {
                owned_probe = Probe::new(trace_level, opts.trace_out.as_deref().map(Path::new))?;
                &owned_probe
            };
            let mut phases: Vec<PhaseLine> = Vec::new();
            let mut mark = Instant::now();
            let phase_end = |name: &str, phases: &mut Vec<PhaseLine>, mark: &mut Instant| {
                phases.push(PhaseLine {
                    name: name.to_string(),
                    wall_ms: mark.elapsed().as_secs_f64() * 1e3,
                    busy_ms: None,
                });
                *mark = Instant::now();
            };
            let model = opts.model.build(opts.seed)?;
            let data = SynthCifarConfig::new()
                .with_size(opts.model.input_size())
                .with_samples(opts.images)
                .with_seed(opts.seed)
                .generate();
            phase_end("model", &mut phases, &mut mark);
            let golden = GoldenReference::build(&model, &data)?;
            let golden = if opts.lowering_cache { golden.with_lowering(&model)? } else { golden };
            phase_end("golden", &mut phases, &mut mark);
            let space = FaultSpace::stuck_at(&model);
            let acts: Option<ActivationSpace> = if opts.accumulate > 1 {
                // Accumulated campaigns compose the weight population with
                // the chosen transient population (activations by default).
                let target = match opts.fault_model {
                    FaultTarget::Input => FaultTarget::Input,
                    _ => FaultTarget::Activation,
                };
                Some(ActivationSpace::build_for(&model, &data, target)?)
            } else if opts.fault_model != FaultTarget::Weight {
                Some(ActivationSpace::build_for(&model, &data, opts.fault_model)?)
            } else {
                None
            };
            let plan = match &acts {
                Some(acts) if opts.accumulate > 1 => {
                    let spec = SampleSpec {
                        error_margin: opts.error_margin,
                        ..SampleSpec::paper_default()
                    };
                    plan_accumulated(space.total() + acts.total(), opts.accumulate, &spec)?
                }
                Some(acts) => build_transient_plan(opts, &model, &data, Some(&golden), acts)?,
                None => build_plan(opts, &model, &space)?,
            };
            let cspace = match &acts {
                Some(acts) if opts.accumulate > 1 => {
                    CampaignSpace::Accumulated { weights: &space, activations: acts }
                }
                Some(acts) => CampaignSpace::Transient(acts),
                None => CampaignSpace::Weight(&space),
            };
            phase_end("plan", &mut phases, &mut mark);
            writeln!(
                out,
                "executing {} {} campaign: {} faults on {} images ({} worker{})...",
                plan.scheme(),
                fault_model_label(&plan),
                group_digits(plan.total_sample()),
                opts.images,
                opts.workers,
                if opts.workers == 1 { "" } else { "s" }
            )?;
            writeln!(
                out,
                "golden reference: {} activation-cache bytes + {} lowering-cache bytes",
                group_digits((golden.memory_bytes() - golden.lowering_bytes()) as u64),
                group_digits(golden.lowering_bytes() as u64),
            )?;
            let cfg = CampaignConfig {
                workers: opts.workers,
                convergence: opts.early_exit,
                delta: opts.delta,
                batched: opts.batched,
                ..CampaignConfig::default()
            };
            // Throttle stderr updates to ~100 over the whole plan.
            let report_progress = opts.progress;
            let mut progress = |p: PlanProgress| {
                if !report_progress {
                    return;
                }
                let step = (p.plan_total / 100).max(1);
                if p.plan_completed.is_multiple_of(step) || p.plan_completed == p.plan_total {
                    eprint!(
                        "\rstratum {}/{}  faults {}/{}  inferences {}    ",
                        p.stratum + 1,
                        p.strata,
                        p.plan_completed,
                        p.plan_total,
                        group_digits(p.inferences)
                    );
                }
            };
            let (outcome, resume_stats) = if let Some(dir) = &opts.checkpoint_dir {
                let checkpoint = CheckpointConfig {
                    dir: PathBuf::from(dir),
                    resume: opts.resume,
                    checkpoint_every: opts.checkpoint_every,
                };
                let run = execute_plan_checkpointed_traced_any(
                    &model,
                    &data,
                    &golden,
                    &plan,
                    cspace,
                    opts.seed,
                    &cfg,
                    &Ieee754Corruption,
                    &checkpoint,
                    None,
                    probe,
                    &mut progress,
                )?;
                if report_progress {
                    eprintln!();
                }
                match run {
                    CampaignRun::Complete { outcome, stats } => {
                        if stats.resumed > 0 {
                            writeln!(
                                out,
                                "resumed {} of {} classifications from the checkpoint journal \
                                 ({} corrupt record(s) dropped and re-executed)",
                                group_digits(stats.resumed),
                                group_digits(stats.total),
                                stats.dropped
                            )?;
                        }
                        (outcome, Some(stats))
                    }
                    CampaignRun::Interrupted { stats } => {
                        writeln!(
                            out,
                            "campaign interrupted: {} of {} faults classified and journaled",
                            group_digits(stats.resumed + stats.completed),
                            group_digits(stats.total)
                        )?;
                        // Seal the trace so the partial campaign is still
                        // inspectable with `sfi trace report`.
                        if let Some(trace) = probe.finish()? {
                            writeln!(
                                out,
                                "trace written: {} ({} events)",
                                trace.path.display(),
                                trace.events
                            )?;
                        }
                        return Err(format!(
                            "campaign interrupted; continue it with `--checkpoint-dir {dir} \
                             --resume`"
                        )
                        .into());
                    }
                }
            } else {
                let outcome = execute_plan_traced_any(
                    &model,
                    &data,
                    &golden,
                    &plan,
                    cspace,
                    opts.seed,
                    &cfg,
                    &Ieee754Corruption,
                    probe,
                    &mut progress,
                )?;
                if report_progress {
                    eprintln!();
                }
                (outcome, None)
            };
            {
                let busy_ms = probe.enabled().then(|| probe.snapshot().inference_ns as f64 / 1e6);
                phases.push(PhaseLine {
                    name: "campaign".to_string(),
                    wall_ms: mark.elapsed().as_secs_f64() * 1e3,
                    busy_ms,
                });
                mark = Instant::now();
            }
            if opts.progress {
                writeln!(out, "\nper-stratum telemetry:")?;
                let table = match &resume_stats {
                    Some(stats) => {
                        telemetry_report_resumed(&outcome, Some(&stats.per_stratum_resumed))
                    }
                    None => telemetry_report(&outcome),
                };
                write!(out, "{table}")?;
                writeln!(out)?;
            }
            let mut table =
                TextTable::new(vec!["group".into(), "critical %".into(), "± %".into(), "n".into()]);
            let (groups, prefix) = match &cspace {
                CampaignSpace::Weight(_) => (space.layers(), "L"),
                CampaignSpace::Transient(acts) => (acts.nodes(), "N"),
                // Accumulated faults span sites in several groups at once;
                // only the network-level estimate is meaningful.
                CampaignSpace::Accumulated { .. } => (0, "L"),
            };
            for group in 0..groups {
                if let Some(est) = outcome.layer_estimate(group, Confidence::C99) {
                    table.add_row(vec![
                        format!("{prefix}{group}"),
                        format!("{:.3}", est.proportion * 100.0),
                        format!("{:.3}", est.error_margin * 100.0),
                        group_digits(est.sample),
                    ]);
                }
            }
            write!(out, "{}", table.render())?;
            let net = outcome.network_estimate(Confidence::C99)?;
            writeln!(
                out,
                "network: {:.3}% ± {:.3}% critical ({} injections, {} inferences, {:.1?})",
                net.proportion * 100.0,
                net.error_margin * 100.0,
                group_digits(outcome.injections()),
                group_digits(outcome.inferences()),
                outcome.elapsed()
            )?;
            if probe.enabled() {
                phase_end("report", &mut phases, &mut mark);
                for phase in &phases {
                    probe.emit(&Event::Phase {
                        name: &phase.name,
                        wall_ms: phase.wall_ms,
                        busy_ms: phase.busy_ms,
                    });
                }
                writeln!(out, "\nphase breakdown:")?;
                write!(out, "{}", phase_report(&phases))?;
            }
            if let Some(trace) = probe.finish()? {
                writeln!(out, "trace written: {} ({} events)", trace.path.display(), trace.events)?;
            }
            let failures: u64 = outcome.stratum_telemetry().iter().map(|t| t.exec_failures).sum();
            if failures > 0 {
                return Err(format!(
                    "campaign recorded {} execution failure(s); the affected faults were \
                     excluded from the estimates",
                    group_digits(failures)
                )
                .into());
            }
        }
        Command::TraceReport => {
            let path = opts
                .trace_out
                .as_deref()
                .ok_or_else(|| err("`trace report` expects a trace file path"))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading trace `{path}`: {e}"))?;
            let trace = summary::summarize(&text).map_err(|e| format!("trace `{path}`: {e}"))?;
            writeln!(out, "trace of {} event(s): {path}", group_digits(trace.events))?;
            if let (Some(strata), Some(faults), Some(workers)) =
                (trace.planned_strata, trace.planned_faults, trace.workers)
            {
                writeln!(
                    out,
                    "campaign: {} strata, {} faults, {} worker(s)",
                    group_digits(strata),
                    group_digits(faults),
                    group_digits(workers)
                )?;
            }
            if let Some(plan) = &trace.plan {
                writeln!(
                    out,
                    "plan: {} nodes, {} fused conv+bn group(s), {} lowerable conv(s), \
                     batched eval {}",
                    group_digits(plan.nodes),
                    group_digits(plan.fused_groups),
                    group_digits(plan.lowerable_convs),
                    if plan.batched { "on" } else { "off" }
                )?;
            }
            if let Some((resumed, dropped)) = trace.resumed {
                writeln!(
                    out,
                    "resumed: {} classifications from a checkpoint journal ({} corrupt \
                     record(s) dropped)",
                    group_digits(resumed),
                    dropped
                )?;
            }
            if !trace.strata.is_empty() {
                writeln!(out, "\nper-stratum spans:")?;
                let mut table = TextTable::new(vec![
                    "stratum".into(),
                    "faults".into(),
                    "masked".into(),
                    "critical".into(),
                    "non-crit".into(),
                    "failures".into(),
                    "wall [ms]".into(),
                ]);
                for s in &trace.strata {
                    let label = if s.label.is_empty() {
                        format!("#{}", s.stratum)
                    } else {
                        s.label.clone()
                    };
                    table.add_row(vec![
                        label,
                        group_digits(s.injections.max(s.fault_events)),
                        group_digits(s.masked),
                        group_digits(s.critical),
                        group_digits(s.non_critical),
                        group_digits(s.failures),
                        format!("{:.1}", s.wall_ms),
                    ]);
                }
                write!(out, "{}", table.render())?;
            }
            if trace.fault_events > 0 {
                let classes: Vec<String> = trace
                    .class_counts
                    .iter()
                    .map(|(name, n)| format!("{name}={}", group_digits(*n)))
                    .collect();
                writeln!(
                    out,
                    "fault events: {} ({})",
                    group_digits(trace.fault_events),
                    classes.join(", ")
                )?;
            }
            if let Some(rate) = trace.lowering_hit_rate() {
                writeln!(out, "lowering-cache hit rate: {}", percent(rate, 1))?;
            }
            if !trace.phases.is_empty() {
                let phases: Vec<PhaseLine> = trace
                    .phases
                    .iter()
                    .map(|p| PhaseLine {
                        name: p.name.clone(),
                        wall_ms: p.wall_ms,
                        busy_ms: p.busy_ms,
                    })
                    .collect();
                writeln!(out, "\nphase breakdown:")?;
                write!(out, "{}", phase_report(&phases))?;
            }
            if let Some(m) = &trace.metrics {
                writeln!(
                    out,
                    "metrics: {} inferences (mean {:.1} us, p99 {:.1} us), {} requeue(s), \
                     {} worker retirement(s), {} fsync(s) (mean {:.1} us), arena {}/{} \
                     reuse/take",
                    group_digits(m.inferences),
                    m.mean_inference_us,
                    m.p99_inference_us,
                    m.requeues,
                    m.worker_retirements,
                    m.fsyncs,
                    m.mean_fsync_us,
                    group_digits(m.arena_reuses),
                    group_digits(m.arena_takes),
                )?;
            }
            if let Some(completed) = trace.interrupted {
                writeln!(out, "interrupted after {} classification(s)", group_digits(completed))?;
            }
            if let Some(c) = &trace.campaign {
                writeln!(
                    out,
                    "total: {} injections, {} inferences, {:.1} ms",
                    group_digits(c.injections),
                    group_digits(c.inferences),
                    c.wall_ms
                )?;
            }
        }
        Command::Analyze => {
            let model = opts.model.build(opts.seed)?;
            let analysis = WeightBitAnalysis::from_weights(model.store().all_weights())?;
            let p = data_aware_p(&analysis, &DataAwareConfig::paper_default())?;
            writeln!(
                out,
                "bit analysis of {} ({} weights)\n",
                model.name(),
                group_digits(model.store().total_weights() as u64)
            )?;
            let mut table = TextTable::new(vec![
                "bit".into(),
                "f1 fraction".into(),
                "D_avg".into(),
                "p(i)".into(),
            ]);
            for bit in (0..32).rev() {
                table.add_row(vec![
                    bit.to_string(),
                    format!("{:.4}", analysis.fraction_one(bit)),
                    format!("{:.3e}", analysis.d_avg(bit)),
                    format!("{:.4}", p[bit as usize]),
                ]);
            }
            write!(out, "{}", table.render())?;
        }
        Command::Bits => {
            let model = opts.model.build(opts.seed)?;
            let data = SynthCifarConfig::new()
                .with_size(opts.model.input_size())
                .with_samples(opts.images)
                .with_seed(opts.seed)
                .generate();
            let golden = GoldenReference::build(&model, &data)?;
            let space = FaultSpace::stuck_at(&model);
            let spec =
                SampleSpec { error_margin: opts.error_margin, ..SampleSpec::paper_default() };
            let plan = plan_data_unaware(&space, &spec);
            writeln!(
                out,
                "data-unaware campaign ({} faults) for the bit ranking...",
                group_digits(plan.total_sample())
            )?;
            let outcome = execute_plan(
                &model,
                &data,
                &golden,
                &plan,
                opts.seed,
                &CampaignConfig { workers: opts.workers, ..CampaignConfig::default() },
            )?;
            let mut table =
                TextTable::new(vec!["bit".into(), "critical %".into(), "± %".into(), "n".into()]);
            for v in bit_ranking(&outcome, Confidence::C99) {
                table.add_row(vec![
                    v.bit.to_string(),
                    format!("{:.3}", v.estimate.proportion * 100.0),
                    format!("{:.3}", v.estimate.error_margin * 100.0),
                    group_digits(v.estimate.sample),
                ]);
            }
            write!(out, "{}", table.render())?;
        }
        Command::Harden => {
            let model = opts.model.build(opts.seed)?;
            let data = SynthCifarConfig::new()
                .with_size(opts.model.input_size())
                .with_samples(opts.images)
                .with_seed(opts.seed)
                .generate();
            let golden = GoldenReference::build(&model, &data)?;
            let space = FaultSpace::stuck_at(&model);
            let spec =
                SampleSpec { error_margin: opts.error_margin, ..SampleSpec::paper_default() };
            let plan = plan_layer_wise(&space, &spec);
            let outcome = execute_plan(
                &model,
                &data,
                &golden,
                &plan,
                opts.seed,
                &CampaignConfig { workers: opts.workers, ..CampaignConfig::default() },
            )?;
            let full = HardeningConfig::secded32(model.store().total_weights() as u64 * 7);
            let cfg = HardeningConfig {
                budget_bits: (full.budget_bits as f64 * opts.budget_frac) as u64,
                ..full
            };
            let protection = plan_protection(&outcome, &space, &cfg, Confidence::C99)?;
            writeln!(
                out,
                "SEC-DED budget: {} of {} check bits ({:.0}%)\n",
                group_digits(cfg.budget_bits),
                group_digits(full.budget_bits),
                opts.budget_frac * 100.0
            )?;
            let mut table = TextTable::new(vec![
                "priority".into(),
                "layer".into(),
                "critical %".into(),
                "cost bits".into(),
                "protected".into(),
            ]);
            for (rank, l) in protection.ranking.iter().enumerate() {
                table.add_row(vec![
                    (rank + 1).to_string(),
                    format!("L{}", l.layer),
                    format!("{:.3}", l.critical_rate * 100.0),
                    group_digits(l.cost_bits),
                    if l.protected { "yes".into() } else { "no".into() },
                ]);
            }
            write!(out, "{}", table.render())?;
            writeln!(
                out,
                "criticality: {:.3}% baseline -> {:.3}% residual ({:.1}% removed)",
                protection.baseline_rate * 100.0,
                protection.residual_rate * 100.0,
                protection.criticality_removed() * 100.0
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_defaults_to_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&args("help")).unwrap().command, Command::Help);
    }

    #[test]
    fn parse_full_run_command() {
        let o = parse(&args(
            "run --model resnet20-micro --scheme data-aware --error 0.02 --images 8 --seed 7",
        ))
        .unwrap();
        assert_eq!(o.command, Command::Run);
        assert_eq!(o.model, ModelChoice::Resnet20Micro);
        assert_eq!(o.scheme, SchemeChoice::DataAware);
        assert_eq!(o.error_margin, 0.02);
        assert_eq!(o.images, 8);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("run --model teapot")).is_err());
        assert!(parse(&args("run --scheme magic")).is_err());
        assert!(parse(&args("run --error two")).is_err());
        assert!(parse(&args("run --error 1.5")).is_err());
        assert!(parse(&args("run --images 0")).is_err());
        assert!(parse(&args("run --images")).is_err());
        assert!(parse(&args("run --bogus 1")).is_err());
        assert!(parse(&args("harden --budget-frac 2")).is_err());
    }

    #[test]
    fn parse_fault_model_and_accumulate() {
        let o = parse(&args("run --fault-model activation --accumulate 4")).unwrap();
        assert_eq!(o.fault_model, FaultTarget::Activation);
        assert_eq!(o.accumulate, 4);
        let o = parse(&args("run --fault-model input")).unwrap();
        assert_eq!(o.fault_model, FaultTarget::Input);
        let d = parse(&args("run")).unwrap();
        assert_eq!(d.fault_model, FaultTarget::Weight);
        assert_eq!(d.accumulate, 1);
        assert!(parse(&args("run --fault-model neutron")).is_err());
        assert!(parse(&args("run --accumulate 0")).is_err());
        assert!(parse(&args("run --accumulate two")).is_err());
    }

    #[test]
    fn run_transient_activation_campaign_end_to_end() {
        let opts = parse(&args(
            "run --model resnet20-micro --fault-model activation --scheme layer-wise              --error 0.2 --images 2 --workers 2",
        ))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("layer-wise activation campaign"), "{text}");
        assert!(text.contains("N0"), "expected node-group rows: {text}");
        assert!(text.contains("network:"), "{text}");
    }

    #[test]
    fn run_accumulated_campaign_end_to_end() {
        let opts = parse(&args(
            "run --model resnet20-micro --accumulate 2 --error 0.2 --images 2 --workers 2",
        ))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("accumulated campaign"), "{text}");
        assert!(text.contains("network:"), "{text}");
    }

    #[test]
    fn plan_transient_prints_node_groups() {
        let opts = parse(&args(
            "plan --model resnet20-micro --fault-model activation --scheme layer-wise              --error 0.1 --images 2",
        ))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("layer-wise activation plan"), "{text}");
        assert!(text.contains("N0"), "{text}");
    }

    #[test]
    fn run_transient_data_aware_uses_activation_statistics() {
        let opts = parse(&args(
            "run --model resnet20-micro --fault-model activation --scheme data-aware              --error 0.2 --images 2",
        ))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("data-aware activation campaign"), "{text}");
    }

    #[test]
    fn parse_workers_and_progress() {
        let o = parse(&args("run --workers 4 --progress")).unwrap();
        assert_eq!(o.workers, 4);
        assert!(o.progress);
        let d = parse(&args("run")).unwrap();
        assert_eq!(d.workers, 1);
        assert!(!d.progress);
        assert!(parse(&args("run --workers 0")).is_err());
        assert!(parse(&args("run --workers four")).is_err());
    }

    #[test]
    fn run_with_progress_prints_telemetry() {
        let opts = parse(&args(
            "run --model resnet20-micro --scheme network-wise --error 0.2 --images 2 \
             --workers 2 --progress",
        ))
        .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("per-stratum telemetry:"), "{text}");
        assert!(text.contains("inf/s"));
        assert!(text.contains("total"));
        assert!(text.contains("network:"));
    }

    #[test]
    fn worker_count_does_not_change_estimates() {
        let base =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let mut serial = Vec::new();
        run(&base, &mut serial).unwrap();
        let parallel_opts = CliOptions { workers: 4, ..base };
        let mut parallel = Vec::new();
        run(&parallel_opts, &mut parallel).unwrap();
        // Drop the header (worker count) and the trailing wall-clock token
        // of the summary line; everything else must match exactly.
        let strip = |b: &[u8]| {
            String::from_utf8(b.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.contains("..."))
                .map(|l| {
                    if l.starts_with("network:") {
                        l.rsplit_once(", ").map(|(a, _)| a.to_string()).unwrap_or_default()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&serial), strip(&parallel));
    }

    #[test]
    fn parse_checkpoint_flags() {
        let o = parse(&args("run --checkpoint-dir /tmp/j --checkpoint-every 8 --resume")).unwrap();
        assert_eq!(o.checkpoint_dir.as_deref(), Some("/tmp/j"));
        assert!(o.resume);
        assert_eq!(o.checkpoint_every, 8);
        let d = parse(&args("run")).unwrap();
        assert_eq!(d.checkpoint_dir, None);
        assert!(!d.resume);
        assert_eq!(d.checkpoint_every, 64);
        assert!(parse(&args("run --resume")).is_err(), "resume requires a checkpoint dir");
        assert!(parse(&args("run --checkpoint-dir /tmp/j --checkpoint-every 0")).is_err());
        assert!(parse(&args("run --checkpoint-dir /tmp/j --checkpoint-every x")).is_err());
        assert!(parse(&args("run --checkpoint-dir")).is_err());
    }

    #[test]
    fn checkpointed_run_and_resume_match_plain_run() {
        let base =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let mut plain = Vec::new();
        run(&base, &mut plain).unwrap();
        let dir = std::env::temp_dir().join(format!("sfi-cli-checkpoint-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let checkpointed =
            CliOptions { checkpoint_dir: Some(dir.to_string_lossy().into_owned()), ..base.clone() };
        let mut first = Vec::new();
        run(&checkpointed, &mut first).unwrap();
        // Resuming over the completed journal re-executes nothing and
        // reports the same estimates.
        let resume = CliOptions { resume: true, ..checkpointed.clone() };
        let mut second = Vec::new();
        run(&resume, &mut second).unwrap();
        let strip = |b: &[u8]| {
            String::from_utf8(b.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.contains("...") && !l.starts_with("resumed"))
                .map(|l| {
                    if l.starts_with("network:") {
                        l.rsplit_once(", ").map(|(a, _)| a.to_string()).unwrap_or_default()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&plain), strip(&first));
        assert_eq!(strip(&plain), strip(&second));
        let second_text = String::from_utf8(second).unwrap();
        assert!(second_text.contains("resumed"), "{second_text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_no_lowering_cache() {
        let o = parse(&args("run --no-lowering-cache")).unwrap();
        assert!(!o.lowering_cache);
        assert!(parse(&args("run")).unwrap().lowering_cache, "cache is on by default");
    }

    #[test]
    fn lowering_cache_does_not_change_estimates() {
        let base =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let mut cached = Vec::new();
        run(&base, &mut cached).unwrap();
        let mut uncached = Vec::new();
        run(&CliOptions { lowering_cache: false, ..base }, &mut uncached).unwrap();
        // Drop the memory header (cache bytes differ by construction) and
        // the summary's wall-clock tail; every estimate must match exactly.
        let strip = |b: &[u8]| {
            String::from_utf8(b.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.contains("...") && !l.starts_with("golden reference:"))
                .map(|l| {
                    if l.starts_with("network:") {
                        l.rsplit_once(", ").map(|(a, _)| a.to_string()).unwrap_or_default()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cached), strip(&uncached));
        let text = String::from_utf8(cached).unwrap();
        assert!(text.contains("golden reference:"), "{text}");
        assert!(text.contains("lowering-cache bytes"));
        let text = String::from_utf8(uncached).unwrap();
        assert!(text.contains("+ 0 lowering-cache bytes"), "{text}");
    }

    #[test]
    fn parse_no_early_exit() {
        let o = parse(&args("run --no-early-exit")).unwrap();
        assert!(!o.early_exit);
        assert!(parse(&args("run")).unwrap().early_exit, "early exit is on by default");
    }

    #[test]
    fn parse_no_batched() {
        let o = parse(&args("run --no-batched")).unwrap();
        assert!(!o.batched);
        assert!(parse(&args("run")).unwrap().batched, "batched eval is on by default");
    }

    #[test]
    fn early_exit_does_not_change_estimates() {
        let base =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let mut fast = Vec::new();
        run(&base, &mut fast).unwrap();
        let mut plain = Vec::new();
        run(&CliOptions { early_exit: false, ..base }, &mut plain).unwrap();
        // Only wall-clock lines may differ; every estimate matches exactly.
        let strip = |b: &[u8]| {
            String::from_utf8(b.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.contains("..."))
                .map(|l| {
                    if l.starts_with("network:") {
                        l.rsplit_once(", ").map(|(a, _)| a.to_string()).unwrap_or_default()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&fast), strip(&plain));
    }

    #[test]
    fn batched_does_not_change_estimates() {
        let base =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let mut batched = Vec::new();
        run(&base, &mut batched).unwrap();
        let mut per_image = Vec::new();
        run(&CliOptions { batched: false, ..base }, &mut per_image).unwrap();
        let strip = |b: &[u8]| {
            String::from_utf8(b.to_vec())
                .unwrap()
                .lines()
                .filter(|l| !l.contains("..."))
                .map(|l| {
                    if l.starts_with("network:") {
                        l.rsplit_once(", ").map(|(a, _)| a.to_string()).unwrap_or_default()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&batched), strip(&per_image));
    }

    #[test]
    fn parse_trace_flags() {
        let o = parse(&args("run --trace-out /tmp/t.jsonl")).unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(o.trace_level, None, "level defaults to events at run time");
        let o = parse(&args("run --trace-out /tmp/t.jsonl --trace-level spans")).unwrap();
        assert_eq!(o.trace_level, Some(TraceLevel::Spans));
        assert!(parse(&args("run --trace-level events")).is_err(), "level needs an output file");
        assert!(parse(&args("run --trace-level verbose --trace-out /tmp/t.jsonl")).is_err());
        assert!(parse(&args("run --trace-out")).is_err());
        // `--trace-level off` alone is a no-op, not an error.
        assert!(parse(&args("run --trace-level off")).is_ok());
    }

    #[test]
    fn parse_trace_report_command() {
        let o = parse(&args("trace report /tmp/t.jsonl")).unwrap();
        assert_eq!(o.command, Command::TraceReport);
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.jsonl"));
        assert!(parse(&args("trace")).is_err());
        assert!(parse(&args("trace report")).is_err());
        assert!(parse(&args("trace explain /tmp/t.jsonl")).is_err());
    }

    #[test]
    fn run_rejects_degenerate_options_with_typed_errors() {
        let zero_workers = CliOptions { command: Command::Run, workers: 0, ..Default::default() };
        let e = run(&zero_workers, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("--workers"), "{e}");
        let no_images = CliOptions { command: Command::Run, images: 0, ..Default::default() };
        let e = run(&no_images, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("empty evaluation set"), "{e}");
    }

    #[test]
    fn traced_run_writes_a_summarizable_jsonl_trace() {
        let trace_path = std::env::temp_dir()
            .join(format!("sfi-cli-trace-{}.jsonl", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let base =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let traced = CliOptions { trace_out: Some(trace_path.clone()), ..base.clone() };
        let mut traced_out = Vec::new();
        run(&traced, &mut traced_out).unwrap();
        let text = String::from_utf8(traced_out).unwrap();
        assert!(text.contains("phase breakdown:"), "{text}");
        assert!(text.contains("trace written:"), "{text}");

        // The stream is valid JSONL that the summarizer accepts, with the
        // campaign's planned spans and per-fault events all present.
        let raw = std::fs::read_to_string(&trace_path).unwrap();
        let trace = summary::summarize(&raw).unwrap();
        assert!(trace.planned_faults.unwrap() > 0);
        assert_eq!(trace.fault_events, trace.planned_faults.unwrap());
        assert!(trace.campaign.is_some(), "campaign_end must be present");
        assert!(trace.metrics.is_some(), "the final metrics event must be present");
        assert!(!trace.phases.is_empty());

        // `sfi trace report` renders the same stream.
        let report_opts =
            parse(&["trace".to_string(), "report".to_string(), trace_path.clone()]).unwrap();
        let mut report_out = Vec::new();
        run(&report_opts, &mut report_out).unwrap();
        let report = String::from_utf8(report_out).unwrap();
        assert!(report.contains("per-stratum spans:"), "{report}");
        assert!(report.contains("fault events:"), "{report}");
        assert!(report.contains("phase breakdown:"), "{report}");
        assert!(report.contains("metrics:"), "{report}");

        // Tracing never changes what the user sees of the campaign: the
        // estimate lines match an untraced run exactly.
        let mut plain_out = Vec::new();
        run(&base, &mut plain_out).unwrap();
        let plain = String::from_utf8(plain_out).unwrap();
        let estimates = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with('L') || l.starts_with("network:"))
                .map(|l| {
                    if l.starts_with("network:") {
                        l.rsplit_once(", ").map(|(a, _)| a.to_string()).unwrap_or_default()
                    } else {
                        l.to_string()
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(estimates(&plain), estimates(&text));
        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn trace_report_rejects_missing_or_malformed_files() {
        let missing = parse(&args("trace report /nonexistent/sfi-trace.jsonl")).unwrap();
        let e = run(&missing, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("reading trace"), "{e}");
        let bad_path =
            std::env::temp_dir().join(format!("sfi-cli-badtrace-{}.jsonl", std::process::id()));
        std::fs::write(&bad_path, "not json\n").unwrap();
        let bad = parse(&[
            "trace".to_string(),
            "report".to_string(),
            bad_path.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let e = run(&bad, &mut Vec::new()).unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        std::fs::remove_file(&bad_path).ok();
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(SchemeChoice::parse("network").unwrap(), SchemeChoice::NetworkWise);
        assert_eq!(SchemeChoice::parse("layer").unwrap(), SchemeChoice::LayerWise);
    }

    #[test]
    fn help_renders_usage() {
        let mut buf = Vec::new();
        run(&CliOptions::default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("--budget-frac"));
    }

    #[test]
    fn plan_command_on_full_resnet() {
        let opts = parse(&args("plan --model resnet20 --scheme layer-wise --error 0.01")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Paper Table I values appear in the plan output (the natural
        // layer-11 count of 9,216 makes the total 307,649 instead of the
        // paper's 307,650, which includes 10 classifier biases there).
        assert!(text.contains("307,649"), "{text}");
        assert!(text.contains("10,389"));
        assert!(text.contains("16,524"));
    }

    #[test]
    fn analyze_command_reports_bits() {
        let opts = parse(&args("analyze --model resnet20-micro")).unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("f1 fraction"));
        assert!(text.contains("p(i)"));
    }

    #[test]
    fn run_command_small_campaign() {
        let opts =
            parse(&args("run --model resnet20-micro --scheme network-wise --error 0.2 --images 2"))
                .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("network:"), "{text}");
    }

    #[test]
    fn harden_command_produces_plan() {
        let opts =
            parse(&args("harden --model resnet20-micro --error 0.2 --images 2 --budget-frac 0.3"))
                .unwrap();
        let mut buf = Vec::new();
        run(&opts, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("SEC-DED budget"));
        assert!(text.contains("residual"));
    }
}
