//! Offline API-compatible stand-in for the subset of `proptest` that the
//! SFI workspace uses.
//!
//! The hermetic build environment has no crates.io access (see
//! `vendor/README.md`), so this crate re-implements the property-testing
//! surface the workspace's `tests/properties.rs` files rely on: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_filter`, range
//! and tuple strategies, [`collection::vec`], [`Just`], [`any`], and the
//! `prop_assert*` macros.
//!
//! Differences from the real proptest, by design:
//!
//! - **no shrinking** — a failing case panics with the raw assertion
//!   message (cases are seeded deterministically, so failures reproduce);
//! - **deterministic seeding** — case `i` of test `t` derives its RNG from
//!   `hash(t) ⊕ i`, so runs are identical across machines and invocations.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Resamples until `f` accepts the value (up to an attempt cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive samples", self.whence);
    }
}

/// Strategy producing a fixed (cloned) value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, sign-balanced, spanning several orders of magnitude.
        rng.gen_range(-1.0e6..1.0e6)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed length or a half-open
    /// range of lengths.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { element, lo, hi }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// FNV-1a hash of the test name, used to decorrelate per-test RNG streams.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the forms the workspace uses: an optional leading
/// `#![proptest_config(...)]`, any number of `#[test] fn` items whose
/// parameters are either `pattern in strategy` or `name: Type` (the latter
/// drawing from [`any`]).
#[macro_export]
macro_rules! proptest {
    // ---- internal: run one case's parameter bindings, then the body ----
    (@run $rng:ident $body:block) => { $body };
    (@run $rng:ident $body:block $pat:pat in $strat:expr) => {
        { let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
          $crate::proptest!(@run $rng $body) }
    };
    (@run $rng:ident $body:block $pat:pat in $strat:expr, $($rest:tt)*) => {
        { let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
          $crate::proptest!(@run $rng $body $($rest)*) }
    };
    (@run $rng:ident $body:block $name:ident : $ty:ty) => {
        { let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
          $crate::proptest!(@run $rng $body) }
    };
    (@run $rng:ident $body:block $name:ident : $ty:ty, $($rest:tt)*) => {
        { let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
          $crate::proptest!(@run $rng $body $($rest)*) }
    };

    // ---- internal: emit each test fn ----
    (@fns $cfg:expr;) => {};
    (@fns $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                #[allow(unused_mut, unused_variables)]
                let mut rng = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                $crate::proptest!(@run rng $body $($params)*);
            }
        }
        $crate::proptest!(@fns $cfg; $($rest)*);
    };

    // ---- public entry points ----
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit_interval() -> impl Strategy<Value = f64> {
        (0.0f64..1.0).prop_filter("finite", |v| v.is_finite())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn range_bounds(v in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Mapped and filtered strategies compose.
        #[test]
        fn combinators(v in unit_interval().prop_map(|x| x * 10.0)) {
            prop_assert!((0.0..10.0).contains(&v));
        }

        /// Tuples, vecs, Just, and `name: Type` params all generate.
        #[test]
        fn aggregate_forms(
            (a, b) in (0u32..4, 0u32..4),
            xs in crate::collection::vec(0usize..9, 2..5),
            unit in Just(7u8),
            seed: u64,
        ) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 9));
            prop_assert_eq!(unit, 7);
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::seed_for("x", 0);
        let mut b = crate::seed_for("x", 0);
        let s = 0u64..u64::MAX;
        assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
    }
}
