//! Offline API-compatible stand-in for the subset of `criterion` that the
//! SFI workspace's benches use.
//!
//! The hermetic build environment has no crates.io access (see
//! `vendor/README.md`), so this crate provides a small but *real* wall-clock
//! benchmark harness behind criterion's API: warm-up, a timed measurement
//! loop honouring `sample_size`/`measurement_time`, and a mean/min/max
//! report per benchmark.
//!
//! Run modes, matching criterion's behaviour under cargo:
//!
//! - `cargo bench` passes `--bench` → full measurement;
//! - `cargo test` (no `--bench` argument) → each benchmark runs exactly one
//!   iteration as a smoke test, so bench targets stay fast in test runs.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measured timing summary of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Number of timed iterations.
    pub iters: u64,
    /// Mean wall time per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    full: bool,
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let full = std::env::args().any(|a| a == "--bench");
        Self { full, default_sample_size: 20, default_measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            full: self.full,
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` as a standalone (group-less) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &id.into_benchmark_id().label,
            self.full,
            self.default_sample_size,
            self.default_measurement_time,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing sample-size/time settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    full: bool,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the measurement loop's total wall time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the per-iteration throughput (accepted for API parity; the
    /// report prints raw times only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_benchmark(&label, self.full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting hook in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Per-iteration throughput declaration, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Builds an id from a parameter rendering alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

/// Conversion into [`BenchmarkId`], so `&str` and `BenchmarkId` are both
/// accepted wherever an id is expected.
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: BenchMode,
    samples: Vec<Duration>,
}

enum BenchMode {
    /// One untimed iteration (cargo test smoke mode).
    Smoke,
    /// Timed loop: up to `sample_size` iterations within `budget`.
    Full { sample_size: usize, budget: Duration },
}

impl Bencher {
    /// Times repeated calls of `f` according to the active mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(f());
            }
            BenchMode::Full { sample_size, budget } => {
                // Warm-up: one untimed iteration (fills caches, faults pages).
                black_box(f());
                let loop_start = Instant::now();
                for _ in 0..sample_size {
                    let start = Instant::now();
                    black_box(f());
                    self.samples.push(start.elapsed());
                    if loop_start.elapsed() > budget {
                        break;
                    }
                }
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    full: bool,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mode = if full {
        BenchMode::Full { sample_size, budget: measurement_time }
    } else {
        BenchMode::Smoke
    };
    let mut bencher = Bencher { mode, samples: Vec::new() };
    f(&mut bencher);
    if !full {
        println!("{label}: smoke ok");
        return;
    }
    match summarize(&bencher.samples) {
        Some(s) => println!(
            "{label}: mean {:?} min {:?} max {:?} ({} iters)",
            s.mean, s.min, s.max, s.iters
        ),
        None => println!("{label}: no samples recorded"),
    }
}

/// Reduces raw per-iteration durations to a [`Sample`].
pub fn summarize(samples: &[Duration]) -> Option<Sample> {
    if samples.is_empty() {
        return None;
    }
    let total: Duration = samples.iter().sum();
    Some(Sample {
        iters: samples.len() as u64,
        mean: total / samples.len() as u32,
        min: *samples.iter().min().expect("nonempty"),
        max: *samples.iter().max().expect("nonempty"),
    })
}

/// Declares a group-runner function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0;
        let mut b = Bencher { mode: BenchMode::Smoke, samples: Vec::new() };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn full_mode_collects_samples() {
        let mut b = Bencher {
            mode: BenchMode::Full { sample_size: 5, budget: Duration::from_secs(1) },
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(3 * 7));
        assert_eq!(b.samples.len(), 5);
        let s = summarize(&b.samples).unwrap();
        assert_eq!(s.iters, 5);
        assert!(s.min <= s.mean && s.mean <= s.max);
    }

    #[test]
    fn ids_render_in_labels() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
        assert_eq!("plain".into_benchmark_id().label, "plain");
    }

    #[test]
    fn summarize_empty_is_none() {
        assert!(summarize(&[]).is_none());
    }
}
