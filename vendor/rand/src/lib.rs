//! Offline API-compatible stand-in for the subset of `rand` 0.8 that the
//! SFI workspace uses.
//!
//! The hermetic build environment has no crates.io access, so the real
//! `rand` cannot be fetched (see `vendor/README.md`). This crate implements
//! the exact surface the workspace calls — `rngs::StdRng`, [`SeedableRng`],
//! [`Rng::gen_range`]/[`Rng::gen`], and `seq::SliceRandom::shuffle` — over a
//! SplitMix64 generator.
//!
//! The generator is deterministic per seed, which is all the workspace
//! relies on (every seeded artefact is regenerated from source, never
//! compared against streams produced by the real `rand`). SplitMix64 passes
//! BigCrush and is more than adequate for sampling fault indices and
//! initialising weights.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Types samplable from their "standard" distribution by [`Rng::gen`]
/// (`[0, 1)` for floats, full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Maps a 64-bit word to `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draws uniformly from `[0, span)` by 128-bit widening multiply
/// (Lemire's method without the rejection step; the bias is `O(2^-64)`).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                (low as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                         i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let v = low + unit_f64(rng.next_u64()) * (high - low);
        // Guard against `low + 1.0 * span` rounding up to `high`.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let v = f64::sample_range(rng, low as f64, high as f64) as f32;
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Draws a value from the type's standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Not the same stream as the real `rand::rngs::StdRng` (ChaCha12) —
    /// only determinism per seed is promised, which is the property every
    /// seeded artefact in the workspace depends on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3u64..17);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(0usize..5);
            assert!(s < 5);
            let x = rng.gen_range(-1.5f32..1.5);
            assert!((-1.5..1.5).contains(&x));
        }
    }

    #[test]
    fn unit_samples_are_half_open() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0u32;
        for _ in 0..100_000 {
            if rng.gen_range(0u64..1000) < 500 {
                low += 1;
            }
        }
        assert!((48_000..52_000).contains(&low), "low half {low}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(4);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle virtually never is identity");
    }

    #[test]
    fn huge_spans_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let _ = rng.gen_range(0u64..u64::MAX);
            let _ = rng.gen_range(i64::MIN..i64::MAX);
        }
    }
}
