//! Offline API-compatible stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (trait + derive macro)
//! that the workspace imports, without any serialisation machinery. See
//! `vendor/README.md` for the policy; the derives expand to nothing, and
//! nothing in the workspace bounds on these traits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
