//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace builds in a hermetic environment with no crates.io access,
//! so the real `serde_derive` cannot be fetched. The workspace only ever
//! *derives* `Serialize`/`Deserialize` as forward-looking annotations — no
//! code path serialises through serde today (machine-readable outputs are
//! hand-rendered JSON/CSV in `sfi-core::report` and `sfi-bench`). These
//! derives therefore expand to nothing; swapping the real serde back in is
//! a one-line change in the workspace `Cargo.toml`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
